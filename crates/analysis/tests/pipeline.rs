//! End-to-end validation: simulator trace → analysis pipeline, scored
//! against the simulator's ground truth (which the pipeline never reads).

use wavelan_analysis::{analyze, ExpectedSeries, PacketClass};
use wavelan_mac::network_id::NetworkId;
use wavelan_net::testpkt::Endpoint;
use wavelan_sim::runner::attach_tx_count;
use wavelan_sim::{Point, ScenarioBuilder, StationConfig};

fn expected() -> ExpectedSeries {
    ExpectedSeries {
        src: Endpoint::station(2),
        dst: Endpoint::station(1),
        network_id: NetworkId::TESTBED,
    }
}

/// Runs a two-station trial at the given separation and returns the analysis.
fn run_trial(distance_ft: f64, packets: u64, seed: u64) -> wavelan_analysis::TraceAnalysis {
    let mut b = ScenarioBuilder::new(seed);
    let rx = b.station(StationConfig::receiver(
        Endpoint::station(1),
        Point::feet(0.0, 0.0),
    ));
    let tx = b.station(StationConfig::sender(
        Endpoint::station(2),
        Point::feet(distance_ft, 0.0),
        rx,
    ));
    let scenario = b.build();
    let mut result = scenario.run(tx, packets);
    attach_tx_count(&mut result, rx, tx);
    analyze(result.trace(rx), &expected())
}

#[test]
fn clean_trial_analyzes_clean() {
    let analysis = run_trial(7.0, 2_000, 1);
    assert!(analysis.test_packets().count() >= 1_990);
    assert_eq!(analysis.count(PacketClass::BodyDamaged), 0);
    assert_eq!(analysis.count(PacketClass::Truncated), 0);
    assert_eq!(analysis.outsiders().count(), 0);
    assert!(analysis.packet_loss() < 0.005);
    assert_eq!(analysis.body_ber(), 0.0);
    // Every sequence number recovered, in order.
    let seqs: Vec<u32> = analysis.test_packets().filter_map(|p| p.seq).collect();
    assert_eq!(seqs.len(), analysis.test_packets().count());
    for w in seqs.windows(2) {
        assert!(w[1] > w[0]);
    }
}

#[test]
fn analysis_agrees_with_ground_truth_under_damage() {
    // A lossy link (in the paper's "error region"): the pipeline's per-packet
    // verdicts must match the simulator's ground truth almost everywhere.
    let mut b = ScenarioBuilder::new(9);
    let rx = b.station(StationConfig::receiver(
        Endpoint::station(1),
        Point::feet(0.0, 0.0),
    ));
    // Far enough that the level sits around 7–9 (open space needs ~290 ft for that): body damage and truncation.
    let tx = b.station(StationConfig::sender(
        Endpoint::station(2),
        Point::feet(290.0, 0.0),
        rx,
    ));
    let scenario = b.build();
    let mut result = scenario.run(tx, 4_000);
    attach_tx_count(&mut result, rx, tx);
    let trace = result.trace(rx);
    let analysis = analyze(trace, &expected());

    let mut verdict_matches = 0usize;
    let mut damaged_seen = 0usize;
    let mut truncated_seen = 0usize;
    for p in &analysis.packets {
        let truth = trace.records[p.index].truth.unwrap();
        if !p.is_test {
            continue; // shredded-beyond-recognition packets are allowed
        }
        let truth_class = if truth.truncated {
            PacketClass::Truncated
        } else if truth.corrupted_bits > 0 {
            // Damage may sit in the wrapper rather than the body.
            p.class // counted below only via bit-exactness for body class
        } else {
            PacketClass::Undamaged
        };
        if truth.truncated {
            truncated_seen += 1;
        }
        if truth.corrupted_bits > 0 {
            damaged_seen += 1;
            // For body-damaged, the syndrome must match the true corrupted
            // bit count exactly whenever all corruption is in the body.
            if p.class == PacketClass::BodyDamaged {
                assert!(
                    p.body_bit_errors <= truth.corrupted_bits,
                    "syndrome {} > truth {}",
                    p.body_bit_errors,
                    truth.corrupted_bits
                );
            }
        }
        if p.class == truth_class {
            verdict_matches += 1;
        }
    }
    let total = analysis.test_packets().count();
    assert!(total > 1_000, "too few received to validate: {total}");
    assert!(
        damaged_seen > 20,
        "expected damage at this range: {damaged_seen}"
    );
    assert!(
        verdict_matches as f64 / total as f64 > 0.99,
        "verdicts match {verdict_matches}/{total}"
    );
    let _ = truncated_seen;
}

#[test]
fn loss_estimate_tracks_truth() {
    // At a long distance with real loss, the pipeline's loss estimate
    // must match (transmitted − received) exactly, because every received
    // packet is recognizable here.
    let analysis = run_trial(280.0, 3_000, 4);
    let received = analysis.test_packets().count() as u64;
    let expected_loss = 1.0 - received as f64 / 3_000.0;
    assert!((analysis.packet_loss() - expected_loss).abs() < 1e-9);
    assert!(analysis.packet_loss() > 0.0, "expected some loss at 280 ft");
}

#[test]
fn sequence_recovery_is_exact_for_matched_packets() {
    let mut b = ScenarioBuilder::new(11);
    let rx = b.station(StationConfig::receiver(
        Endpoint::station(1),
        Point::feet(0.0, 0.0),
    ));
    let tx = b.station(StationConfig::sender(
        Endpoint::station(2),
        Point::feet(90.0, 0.0),
        rx,
    ));
    let scenario = b.build();
    let mut result = scenario.run(tx, 3_000);
    attach_tx_count(&mut result, rx, tx);
    let trace = result.trace(rx);
    let analysis = analyze(trace, &expected());
    let mut checked = 0;
    for p in analysis.test_packets() {
        let truth = trace.records[p.index].truth.unwrap();
        if let (Some(rec), Some(true_seq)) = (p.seq, truth.seq) {
            // The fallback path recovers only the low 16 bits (IP ident).
            assert!(
                rec == true_seq || rec == u32::from(true_seq as u16),
                "recovered {rec}, truth {true_seq}"
            );
            checked += 1;
        }
    }
    assert!(checked > 2_000, "{checked}");
}
