//! The self-describing columnar trace export format ("WLTC").
//!
//! This is the capture side of the paper's methodology made durable: a run
//! exports every logged record to a file, and the analysis pipeline re-runs
//! offline over the export, byte-for-byte reproducing the live Report. The
//! format is deliberately **oracle-free** — it carries exactly what a real
//! promiscuous capture would have (bytes, announced wire length, the four
//! status fields), never the simulator's [`GroundTruth`] — so an offline
//! re-analysis proves the classifier "would run unchanged against a real
//! trace".
//!
//! Layout (all integers little-endian; strings are `u16 len | bytes`):
//!
//! ```text
//! header:  "WLTC" | u8 version | u64 spec_hash | u64 seed | u64 packet_budget
//!          | str scale | str artifact
//! streams: repeat per stream (one per trial, in trial order):
//!   'S' | str name
//!   repeat per block (up to 256 records each):
//!     'B' | u16 record_count | u32 payload_total
//!     | u64 time_ns[count] | u32 wire_len[count] | u32 byte_len[count]
//!     | u8 level[count] | u8 silence[count] | u8 quality[count]
//!     | u8 antenna[count]
//!     | payload bytes (records' bytes concatenated, payload_total long)
//!   'E' | u64 transmitted | u64 dropped_by_mac | u64 record_count
//! footer:  'F' | u64 total_records
//! ```
//!
//! Columns beat row-major records here because a whole block's fixed-width
//! fields read with one `read_exact` each into reused buffers: the reader's
//! memory is bounded by the block size, not the trace size, and decoding is
//! a handful of bulk copies per 256 records.
//!
//! [`GroundTruth`]: wavelan_sim::trace::GroundTruth

use std::io::{self, Read, Write};
use wavelan_sim::trace::{RecordView, TraceSink};
use wavelan_sim::StationId;

/// File magic.
pub const MAGIC: &[u8; 4] = b"WLTC";
/// Current format version.
pub const VERSION: u8 = 1;
/// Records per block (bounds the reader's working set).
pub const BLOCK_RECORDS: usize = 256;

/// Sanity cap on a single record's byte length (far above any WaveLAN
/// frame); guards against reading garbage lengths from corrupt files.
const MAX_RECORD_BYTES: u32 = 65_536;
/// Sanity cap on one block's total payload.
const MAX_BLOCK_PAYLOAD: u32 = BLOCK_RECORDS as u32 * MAX_RECORD_BYTES;
/// Sanity cap on a header string.
const MAX_STRING: u16 = 4096;

/// Stream/block/footer tags.
const TAG_STREAM: u8 = b'S';
const TAG_BLOCK: u8 = b'B';
const TAG_END: u8 = b'E';
const TAG_FOOTER: u8 = b'F';

/// Errors from decoding a WLTC trace file.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a WLTC trace file (bad magic).
    BadMagic,
    /// A version this library does not read.
    UnsupportedVersion(u8),
    /// Structurally invalid (truncated, absurd lengths, bad tags,
    /// inconsistent counts).
    Corrupt(&'static str),
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::BadMagic => write!(f, "not a WLTC trace file"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// The run identity a trace file carries in its header — everything the
/// offline re-analysis needs to find the experiment and verify it is
/// re-analyzing what was captured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Registry artifact name (e.g. `table2`).
    pub artifact: String,
    /// Scale name the run used (e.g. `smoke`).
    pub scale: String,
    /// Base seed of the run.
    pub seed: u64,
    /// FNV-1a hash of the experiment's `ScenarioSpec` JSON at capture time.
    pub spec_hash: u64,
    /// Per-trial packet budget of the run.
    pub packet_budget: u64,
}

/// What a stream's end marker carries: the sender-side bookkeeping the
/// loss accounting needs (known to the experimenter, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTail {
    /// Test packets the sender put on the air during the trial.
    pub transmitted: u64,
    /// Frames the sending MAC abandoned.
    pub dropped_by_mac: u64,
    /// Records the stream holds (verified against the blocks read).
    pub records: u64,
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let len = u16::try_from(s.len()).map_err(|_| io::Error::other("string too long"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(s.as_bytes())
}

/// Encodes records block-by-block into any `Write` sink.
///
/// Also a [`TraceSink`], so an export run tees records straight from the
/// event loop into the file: the first I/O error is latched and re-surfaced
/// by [`TraceWriter::finish`] (the sink interface has no error channel).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    in_stream: bool,
    stream_records: u64,
    total_records: u64,
    // The pending block, column-major.
    time_ns: Vec<u64>,
    wire_len: Vec<u32>,
    byte_len: Vec<u32>,
    level: Vec<u8>,
    silence: Vec<u8>,
    quality: Vec<u8>,
    antenna: Vec<u8>,
    payload: Vec<u8>,
    /// First latched sink-path I/O error.
    error: Option<io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and returns the encoder.
    pub fn new(mut w: W, meta: &TraceMeta) -> io::Result<TraceWriter<W>> {
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&meta.spec_hash.to_le_bytes())?;
        w.write_all(&meta.seed.to_le_bytes())?;
        w.write_all(&meta.packet_budget.to_le_bytes())?;
        write_str(&mut w, &meta.scale)?;
        write_str(&mut w, &meta.artifact)?;
        Ok(TraceWriter {
            w,
            in_stream: false,
            stream_records: 0,
            total_records: 0,
            time_ns: Vec::with_capacity(BLOCK_RECORDS),
            wire_len: Vec::with_capacity(BLOCK_RECORDS),
            byte_len: Vec::with_capacity(BLOCK_RECORDS),
            level: Vec::with_capacity(BLOCK_RECORDS),
            silence: Vec::with_capacity(BLOCK_RECORDS),
            quality: Vec::with_capacity(BLOCK_RECORDS),
            antenna: Vec::with_capacity(BLOCK_RECORDS),
            payload: Vec::new(),
            error: None,
        })
    }

    /// Opens the next stream (one per trial, written in trial order).
    pub fn begin_stream(&mut self, name: &str) -> io::Result<()> {
        assert!(!self.in_stream, "previous stream not ended");
        self.w.write_all(&[TAG_STREAM])?;
        write_str(&mut self.w, name)?;
        self.in_stream = true;
        self.stream_records = 0;
        Ok(())
    }

    /// Appends one record to the open stream.
    pub fn push(&mut self, view: &RecordView<'_>) -> io::Result<()> {
        assert!(self.in_stream, "push outside a stream");
        self.time_ns.push(view.time_ns);
        self.wire_len.push(view.wire_len);
        self.byte_len.push(view.bytes.len() as u32);
        self.level.push(view.level);
        self.silence.push(view.silence);
        self.quality.push(view.quality);
        self.antenna.push(view.antenna);
        self.payload.extend_from_slice(view.bytes);
        self.stream_records += 1;
        self.total_records += 1;
        if self.time_ns.len() >= BLOCK_RECORDS {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.time_ns.is_empty() {
            return Ok(());
        }
        self.w.write_all(&[TAG_BLOCK])?;
        self.w
            .write_all(&(self.time_ns.len() as u16).to_le_bytes())?;
        self.w
            .write_all(&(self.payload.len() as u32).to_le_bytes())?;
        for t in &self.time_ns {
            self.w.write_all(&t.to_le_bytes())?;
        }
        for v in &self.wire_len {
            self.w.write_all(&v.to_le_bytes())?;
        }
        for v in &self.byte_len {
            self.w.write_all(&v.to_le_bytes())?;
        }
        self.w.write_all(&self.level)?;
        self.w.write_all(&self.silence)?;
        self.w.write_all(&self.quality)?;
        self.w.write_all(&self.antenna)?;
        self.w.write_all(&self.payload)?;
        self.time_ns.clear();
        self.wire_len.clear();
        self.byte_len.clear();
        self.level.clear();
        self.silence.clear();
        self.quality.clear();
        self.antenna.clear();
        self.payload.clear();
        Ok(())
    }

    /// Closes the open stream, recording the sender-side tallies.
    pub fn end_stream(&mut self, transmitted: u64, dropped_by_mac: u64) -> io::Result<()> {
        assert!(self.in_stream, "end_stream outside a stream");
        self.flush_block()?;
        self.w.write_all(&[TAG_END])?;
        self.w.write_all(&transmitted.to_le_bytes())?;
        self.w.write_all(&dropped_by_mac.to_le_bytes())?;
        self.w.write_all(&self.stream_records.to_le_bytes())?;
        self.in_stream = false;
        Ok(())
    }

    /// Writes the footer and hands the sink back. Surfaces any I/O error
    /// latched on the [`TraceSink`] path.
    pub fn finish(mut self) -> io::Result<W> {
        assert!(!self.in_stream, "finish with a stream still open");
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.w.write_all(&[TAG_FOOTER])?;
        self.w.write_all(&self.total_records.to_le_bytes())?;
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn record(&mut self, _station: StationId, view: &RecordView<'_>) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.push(view) {
            self.error = Some(e);
        }
    }
}

fn read_array<R: Read, const N: usize>(r: &mut R) -> Result<[u8; N], CodecError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)
        .map_err(|_| CodecError::Corrupt("unexpected end of file"))?;
    Ok(buf)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, CodecError> {
    Ok(u64::from_le_bytes(read_array::<_, 8>(r)?))
}

fn read_str<R: Read>(r: &mut R) -> Result<String, CodecError> {
    let len = u16::from_le_bytes(read_array::<_, 2>(r)?);
    if len > MAX_STRING {
        return Err(CodecError::Corrupt("string length exceeds sanity cap"));
    }
    let mut buf = vec![0u8; usize::from(len)];
    r.read_exact(&mut buf)
        .map_err(|_| CodecError::Corrupt("unexpected end of file"))?;
    String::from_utf8(buf).map_err(|_| CodecError::Corrupt("string is not UTF-8"))
}

/// Decodes a WLTC file stream-by-stream, handing each record out as a
/// borrowed [`RecordView`] (with `truth: None` — the format carries no
/// oracle). Column buffers are reused across blocks, so memory is bounded
/// by the block size regardless of trace length.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    meta: TraceMeta,
    in_stream: bool,
    finished: bool,
    records_seen: u64,
    // Reused per-block column buffers.
    time_ns: Vec<u64>,
    wire_len: Vec<u32>,
    byte_len: Vec<u32>,
    level: Vec<u8>,
    silence: Vec<u8>,
    quality: Vec<u8>,
    antenna: Vec<u8>,
    payload: Vec<u8>,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header.
    pub fn open(mut r: R) -> Result<TraceReader<R>, CodecError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let [version] = read_array::<_, 1>(&mut r)?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let spec_hash = read_u64(&mut r)?;
        let seed = read_u64(&mut r)?;
        let packet_budget = read_u64(&mut r)?;
        let scale = read_str(&mut r)?;
        let artifact = read_str(&mut r)?;
        Ok(TraceReader {
            r,
            meta: TraceMeta {
                artifact,
                scale,
                seed,
                spec_hash,
                packet_budget,
            },
            in_stream: false,
            finished: false,
            records_seen: 0,
            time_ns: Vec::new(),
            wire_len: Vec::new(),
            byte_len: Vec::new(),
            level: Vec::new(),
            silence: Vec::new(),
            quality: Vec::new(),
            antenna: Vec::new(),
            payload: Vec::new(),
        })
    }

    /// The run identity from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Advances to the next stream: `Some(name)` if one opens, `None` after
    /// a verified footer.
    pub fn next_stream(&mut self) -> Result<Option<String>, CodecError> {
        assert!(!self.in_stream, "previous stream not fully read");
        if self.finished {
            return Ok(None);
        }
        let [tag] = read_array::<_, 1>(&mut self.r)?;
        match tag {
            TAG_STREAM => {
                let name = read_str(&mut self.r)?;
                self.in_stream = true;
                Ok(Some(name))
            }
            TAG_FOOTER => {
                let total = read_u64(&mut self.r)?;
                if total != self.records_seen {
                    return Err(CodecError::Corrupt("footer record count mismatch"));
                }
                self.finished = true;
                Ok(None)
            }
            _ => Err(CodecError::Corrupt("unexpected tag between streams")),
        }
    }

    /// Reads the open stream to its end marker, calling `f` once per record
    /// in stored order. The view's `bytes` borrow the reader's block buffer
    /// and are valid only for the duration of the call.
    pub fn for_each_record<F: FnMut(&RecordView<'_>)>(
        &mut self,
        mut f: F,
    ) -> Result<StreamTail, CodecError> {
        assert!(self.in_stream, "no open stream");
        let mut stream_records = 0u64;
        loop {
            let [tag] = read_array::<_, 1>(&mut self.r)?;
            match tag {
                TAG_BLOCK => {
                    let count = self.read_block()?;
                    stream_records += count as u64;
                    self.records_seen += count as u64;
                    let mut offset = 0usize;
                    for i in 0..count {
                        let len = self.byte_len[i] as usize;
                        f(&RecordView {
                            time_ns: self.time_ns[i],
                            bytes: &self.payload[offset..offset + len],
                            wire_len: self.wire_len[i],
                            level: self.level[i],
                            silence: self.silence[i],
                            quality: self.quality[i],
                            antenna: self.antenna[i],
                            truth: None,
                        });
                        offset += len;
                    }
                }
                TAG_END => {
                    let transmitted = read_u64(&mut self.r)?;
                    let dropped_by_mac = read_u64(&mut self.r)?;
                    let records = read_u64(&mut self.r)?;
                    if records != stream_records {
                        return Err(CodecError::Corrupt("stream record count mismatch"));
                    }
                    self.in_stream = false;
                    return Ok(StreamTail {
                        transmitted,
                        dropped_by_mac,
                        records,
                    });
                }
                _ => return Err(CodecError::Corrupt("unexpected tag inside stream")),
            }
        }
    }

    /// Decodes one block into the reused column buffers; returns its record
    /// count.
    fn read_block(&mut self) -> Result<usize, CodecError> {
        let count = usize::from(u16::from_le_bytes(read_array::<_, 2>(&mut self.r)?));
        let payload_total = u32::from_le_bytes(read_array::<_, 4>(&mut self.r)?);
        if payload_total > MAX_BLOCK_PAYLOAD {
            return Err(CodecError::Corrupt("block payload exceeds sanity cap"));
        }
        self.time_ns.clear();
        self.wire_len.clear();
        self.byte_len.clear();
        for _ in 0..count {
            self.time_ns.push(read_u64(&mut self.r)?);
        }
        for _ in 0..count {
            self.wire_len
                .push(u32::from_le_bytes(read_array::<_, 4>(&mut self.r)?));
        }
        let mut byte_sum = 0u64;
        for _ in 0..count {
            let len = u32::from_le_bytes(read_array::<_, 4>(&mut self.r)?);
            if len > MAX_RECORD_BYTES {
                return Err(CodecError::Corrupt("record length exceeds sanity cap"));
            }
            byte_sum += u64::from(len);
            self.byte_len.push(len);
        }
        if byte_sum != u64::from(payload_total) {
            return Err(CodecError::Corrupt("block payload length mismatch"));
        }
        for col in [
            &mut self.level,
            &mut self.silence,
            &mut self.quality,
            &mut self.antenna,
        ] {
            col.resize(count, 0);
            self.r
                .read_exact(col)
                .map_err(|_| CodecError::Corrupt("unexpected end of file"))?;
        }
        self.payload.resize(payload_total as usize, 0);
        self.r
            .read_exact(&mut self.payload)
            .map_err(|_| CodecError::Corrupt("unexpected end of file"))?;
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavelan_sim::trace::TraceRecord;

    fn meta() -> TraceMeta {
        TraceMeta {
            artifact: "table2".to_string(),
            scale: "smoke".to_string(),
            seed: 1996,
            spec_hash: 0xDEAD_BEEF_0BAD_CAFE,
            packet_budget: 300,
        }
    }

    fn sample(seed: u64) -> TraceRecord {
        TraceRecord {
            time_ns: seed.wrapping_mul(6_100_000),
            bytes: (0..((seed % 40) as u8 + 5)).map(|i| i ^ (seed as u8)).collect(),
            wire_len: 1074,
            level: (seed % 64) as u8,
            silence: (seed % 17) as u8,
            quality: (seed % 16) as u8,
            antenna: (seed % 2) as u8,
            truth: None,
        }
    }

    fn encode(streams: &[(&str, Vec<TraceRecord>, u64, u64)]) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), &meta()).unwrap();
        for (name, records, transmitted, dropped) in streams {
            w.begin_stream(name).unwrap();
            for r in records {
                w.push(&r.view()).unwrap();
            }
            w.end_stream(*transmitted, *dropped).unwrap();
        }
        w.finish().unwrap()
    }

    fn decode(buf: &[u8]) -> (TraceMeta, Vec<(String, Vec<TraceRecord>, StreamTail)>) {
        let mut r = TraceReader::open(buf).unwrap();
        let meta = r.meta().clone();
        let mut streams = Vec::new();
        while let Some(name) = r.next_stream().unwrap() {
            let mut records = Vec::new();
            let tail = r.for_each_record(|v| records.push(v.to_record())).unwrap();
            streams.push((name, records, tail));
        }
        (meta, streams)
    }

    #[test]
    fn round_trip_preserves_streams_and_meta() {
        let records: Vec<TraceRecord> = (0..600).map(sample).collect();
        let buf = encode(&[
            ("trial-1", records.clone(), 700, 3),
            ("trial-2", Vec::new(), 5, 0),
        ]);
        let (m, streams) = decode(&buf);
        assert_eq!(m, meta());
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].0, "trial-1");
        assert_eq!(streams[0].1, records);
        assert_eq!(
            streams[0].2,
            StreamTail {
                transmitted: 700,
                dropped_by_mac: 3,
                records: 600
            }
        );
        assert_eq!(streams[1].1.len(), 0);
        assert_eq!(streams[1].2.transmitted, 5);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            TraceReader::open(&b"NOPE............................"[..]).unwrap_err(),
            CodecError::BadMagic
        ));
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut buf = encode(&[]);
        buf[4] = 77;
        assert!(matches!(
            TraceReader::open(&buf[..]).unwrap_err(),
            CodecError::UnsupportedVersion(77)
        ));
    }

    #[test]
    fn truncation_anywhere_fails_loudly_without_panic() {
        let buf = encode(&[("trial-1", (0..10).map(sample).collect(), 12, 0)]);
        for cut in 0..buf.len() {
            let mut r = match TraceReader::open(&buf[..cut]) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let mut failed = false;
            loop {
                match r.next_stream() {
                    Ok(Some(_)) => {
                        if r.for_each_record(|_| {}).is_err() {
                            failed = true;
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            assert!(failed, "cut {cut} decoded as complete");
        }
    }

    #[test]
    fn corrupt_counters_are_rejected() {
        // Corrupt the footer's total: count mismatch.
        let mut buf = encode(&[("t", (0..3).map(sample).collect(), 3, 0)]);
        let n = buf.len();
        buf[n - 8..].copy_from_slice(&999u64.to_le_bytes());
        let mut r = TraceReader::open(&buf[..]).unwrap();
        assert!(r.next_stream().unwrap().is_some());
        r.for_each_record(|_| {}).unwrap();
        assert!(matches!(
            r.next_stream(),
            Err(CodecError::Corrupt("footer record count mismatch"))
        ));
    }
}
