#![warn(missing_docs)]

//! # wavelan-analysis
//!
//! The study's offline analysis pipeline (paper Section 4), reimplemented
//! over the [`wavelan_sim::trace`] format.
//!
//! The receiver logs *everything* — damaged, truncated, misaddressed, foreign
//! — so deciding what each logged packet *is* requires heuristics:
//!
//! > "we use a heuristic matching procedure to determine whether a given
//! > packet is one of the test series. ... We apply a second heuristic
//! > procedure to determine the sequence number of any packet we believe is
//! > a test packet. Since the packet body consists of a single word repeated
//! > multiple times, truncated packet bodies are ambiguous ... Therefore, we
//! > produce an estimated error syndrome (bit corruption pattern) only for
//! > those test packets which are damaged but not truncated. ... Due to these
//! > factors, our packet loss rate and bit error rate (BER) figures are
//! > necessarily only estimates."
//!
//! Modules:
//!
//! * [`matcher`] — is this logged packet one of ours? (score-based heuristic
//!   over addresses, ports, frame length and the repeated-word body),
//! * [`classify`] — Undamaged / Truncated / Wrapper-damaged / Body-damaged /
//!   Outsider, plus the body-bit error syndrome,
//! * [`stats`] — streaming min / mean / σ / max, the paper's `↓ μ (σ) ↑`
//!   columns,
//! * [`summary`] — per-trial aggregation into the paper's Table 1 column set,
//! * [`report`] — the structured report model (typed tables, notes) plus the
//!   one generic plain-text renderer that mirrors the paper's tables,
//! * [`json`] — serde-based JSON writer and round-trip parser for reports,
//! * [`bursts`] — error-burst statistics and Gilbert–Elliott fitting over
//!   measured syndromes (feeds interleaver-depth choices in `wavelan-fec`),
//! * [`lossruns`] — temporal structure of packet loss from recovered
//!   sequence numbers (isolated drops vs multi-packet outages),
//! * [`stream`] — the classifier + Table 1 aggregation as a constant-memory
//!   [`wavelan_sim::TraceSink`] fold (bit-identical to the buffered path),
//! * [`tracecodec`] — the self-describing columnar trace export format
//!   ("WLTC") for offline re-analysis.
//!
//! The pipeline never reads the simulator's ground truth; tests score it
//! against the truth after the fact.

pub mod bursts;
pub mod classify;
pub mod json;
pub mod lossruns;
pub mod matcher;
pub mod report;
pub mod stats;
pub mod stream;
pub mod summary;
pub mod tracecodec;

pub use bursts::{burst_report, BurstReport};
pub use classify::{AnalyzedPacket, ClassifyScratch, PacketClass, TraceAnalysis};
pub use lossruns::{loss_runs, LossRunReport};
pub use matcher::ExpectedSeries;
pub use report::{
    render_blocks, Align, Block, Cell, Column, Report, RunDocument, StatField, StatsCell, Table,
};
pub use stats::SignalStats;
pub use stream::StreamAnalysis;
pub use summary::TrialSummary;
pub use tracecodec::{CodecError, StreamTail, TraceMeta, TraceReader, TraceWriter};

use wavelan_sim::Trace;

/// Runs the full pipeline over a trace: match, classify, aggregate.
pub fn analyze(trace: &Trace, expected: &ExpectedSeries) -> TraceAnalysis {
    classify::classify_trace(trace, expected)
}
