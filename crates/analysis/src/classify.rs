//! Damage classification and body-bit error syndromes.
//!
//! The paper's taxonomy (Table 1 and Section 4), applied per logged packet:
//!
//! * **Undamaged** — full length, wrapper verifies, body matches the
//!   recovered word exactly;
//! * **Truncated** — shorter than the fixed test-packet length ("truncated
//!   packet bodies are ambiguous", so no syndrome is extracted);
//! * **Wrapper damaged** — full length, body intact, but the Ethernet FCS /
//!   IP checksum / network ID shows damage in the framing;
//! * **Body damaged** — full length, one or more body bits differ from the
//!   recovered word (the syndrome is the per-word XOR against that word);
//! * **Outsider** — not recognized as a test packet at all (foreign stations,
//!   or our packets "corrupted beyond recognition").

use crate::matcher::{self, ExpectedSeries, MatchEvidence};
use crate::stats::SignalStats;
use wavelan_mac::network_id::strip_network_id;
use wavelan_net::EthernetFrame;
use wavelan_sim::{RecordView, Trace, TraceRecord};

/// Damage classification of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// Arrived complete and intact.
    Undamaged,
    /// Delivery stopped early.
    Truncated,
    /// Framing damaged, body intact.
    WrapperDamaged,
    /// One or more corrupted body bits.
    BodyDamaged,
}

/// One analyzed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzedPacket {
    /// Index into the trace's records.
    pub index: usize,
    /// Accepted as part of the test series?
    pub is_test: bool,
    /// Damage class (for outsiders: Undamaged means its own FCS verified).
    pub class: PacketClass,
    /// Recovered sequence number (test packets only, when recoverable).
    pub seq: Option<u32>,
    /// Corrupted body bits (non-truncated test packets only).
    pub body_bit_errors: u32,
    /// Body bits delivered (full packet: 8192; truncated: what arrived).
    pub body_bits_received: u64,
    /// Reported signal level.
    pub level: u8,
    /// Reported silence level.
    pub silence: u8,
    /// Reported signal quality.
    pub quality: u8,
}

/// The analyzed trace: per-packet verdicts plus the trace-level counters
/// needed for loss accounting.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Per-packet verdicts, in arrival order.
    pub packets: Vec<AnalyzedPacket>,
    /// Test packets the sender put on the air (from the experimenter's own
    /// bookkeeping, as in the paper).
    pub transmitted: u64,
}

impl TraceAnalysis {
    /// Test packets only.
    pub fn test_packets(&self) -> impl Iterator<Item = &AnalyzedPacket> {
        self.packets.iter().filter(|p| p.is_test)
    }

    /// Outsiders only.
    pub fn outsiders(&self) -> impl Iterator<Item = &AnalyzedPacket> {
        self.packets.iter().filter(|p| !p.is_test)
    }

    /// Count of test packets in a class.
    pub fn count(&self, class: PacketClass) -> usize {
        self.test_packets().filter(|p| p.class == class).count()
    }

    /// Signal statistics (level, silence, quality) over a packet subset.
    pub fn stats_where<F: Fn(&AnalyzedPacket) -> bool>(
        &self,
        filter: F,
    ) -> (SignalStats, SignalStats, SignalStats) {
        let mut level = SignalStats::new();
        let mut silence = SignalStats::new();
        let mut quality = SignalStats::new();
        for p in self.packets.iter().filter(|p| filter(p)) {
            level.push(p.level);
            silence.push(p.silence);
            quality.push(p.quality);
        }
        (level, silence, quality)
    }

    /// Estimated body-bit error rate: damaged body bits over body bits
    /// received ("necessarily only estimates", Section 4).
    pub fn body_ber(&self) -> f64 {
        let bits: u64 = self.test_packets().map(|p| p.body_bits_received).sum();
        if bits == 0 {
            return 0.0;
        }
        let errors: u64 = self
            .test_packets()
            .map(|p| u64::from(p.body_bit_errors))
            .sum();
        errors as f64 / bits as f64
    }

    /// Estimated packet loss rate against the transmitted count.
    pub fn packet_loss(&self) -> f64 {
        if self.transmitted == 0 {
            return 0.0;
        }
        let received = self.test_packets().count() as u64;
        1.0 - (received.min(self.transmitted) as f64 / self.transmitted as f64)
    }
}

/// Reusable workspace for the classifier: the body-word buffer, so
/// classifying a record in a streaming fold allocates nothing.
#[derive(Debug, Default)]
pub struct ClassifyScratch {
    words: Vec<u32>,
}

impl ClassifyScratch {
    /// A fresh workspace (the word buffer grows to 256 words and stays).
    pub fn new() -> ClassifyScratch {
        ClassifyScratch::default()
    }
}

/// Classifies one logged packet.
pub fn classify_record(
    index: usize,
    record: &TraceRecord,
    expected: &ExpectedSeries,
) -> AnalyzedPacket {
    classify_view(index, &record.view(), expected, &mut ClassifyScratch::new())
}

/// Classifies one borrowed record — the streaming form: no allocation once
/// `scratch` has warmed up. The truncation verdict compares the delivered
/// bytes against the record's own announced wire length, so non-standard
/// frame sizes (the pulsed-interference sweeps' [`FrameKind::Sized`] frames)
/// classify correctly too.
///
/// [`FrameKind::Sized`]: wavelan_sim::station::FrameKind::Sized
pub fn classify_view(
    index: usize,
    view: &RecordView<'_>,
    expected: &ExpectedSeries,
    scratch: &mut ClassifyScratch,
) -> AnalyzedPacket {
    let evidence =
        matcher::evaluate_in(view.bytes, view.wire_len as usize, expected, &mut scratch.words);
    let base = AnalyzedPacket {
        index,
        is_test: evidence.is_test_packet(),
        class: PacketClass::Undamaged,
        seq: None,
        body_bit_errors: 0,
        body_bits_received: 0,
        level: view.level,
        silence: view.silence,
        quality: view.quality,
    };
    if base.is_test {
        classify_test_packet(base, view, expected, &evidence, &scratch.words)
    } else {
        classify_outsider(base, view)
    }
}

fn classify_test_packet(
    mut p: AnalyzedPacket,
    view: &RecordView<'_>,
    expected: &ExpectedSeries,
    evidence: &MatchEvidence,
    words: &[u32],
) -> AnalyzedPacket {
    p.seq = matcher::recover_sequence(view.bytes, evidence);
    p.body_bits_received = words.len() as u64 * 32;

    if view.bytes.len() < view.wire_len as usize {
        p.class = PacketClass::Truncated;
        return p;
    }

    // Body syndrome against the recovered word.
    if let Some(word) = evidence.majority_word {
        p.body_bit_errors = words.iter().map(|w| (w ^ word).count_ones()).sum();
    }
    if p.body_bit_errors > 0 {
        p.class = PacketClass::BodyDamaged;
        return p;
    }

    // Body intact: check the wrapper (modem framing + Ethernet + IP).
    let wrapper_ok = match strip_network_id(view.bytes) {
        Some((id, eth_bytes)) => {
            id == expected.network_id && EthernetFrame::check_fcs(eth_bytes).unwrap_or(false)
        }
        None => false,
    };
    p.class = if wrapper_ok {
        PacketClass::Undamaged
    } else {
        PacketClass::WrapperDamaged
    };
    p
}

fn classify_outsider(mut p: AnalyzedPacket, view: &RecordView<'_>) -> AnalyzedPacket {
    // For foreign packets we cannot know the intended length or contents;
    // "undamaged" means what arrived frames correctly and passes its own FCS.
    let intact = strip_network_id(view.bytes)
        .map(|(_, eth)| EthernetFrame::check_fcs(eth).unwrap_or(false))
        .unwrap_or(false);
    p.class = if intact {
        PacketClass::Undamaged
    } else {
        PacketClass::BodyDamaged
    };
    p
}

/// Classifies a whole trace.
pub fn classify_trace(trace: &Trace, expected: &ExpectedSeries) -> TraceAnalysis {
    let mut scratch = ClassifyScratch::new();
    TraceAnalysis {
        packets: trace
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| classify_view(i, &r.view(), expected, &mut scratch))
            .collect(),
        transmitted: trace.packets_transmitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavelan_mac::network_id::{wrap_with_network_id, NetworkId};
    use wavelan_net::testpkt::{Endpoint, TestPacket};

    fn series() -> ExpectedSeries {
        ExpectedSeries {
            src: Endpoint::station(2),
            dst: Endpoint::station(1),
            network_id: NetworkId::TESTBED,
        }
    }

    fn record(bytes: Vec<u8>) -> TraceRecord {
        TraceRecord {
            time_ns: 0,
            bytes,
            wire_len: matcher::full_wire_len() as u32,
            level: 29,
            silence: 3,
            quality: 15,
            antenna: 0,
            truth: None,
        }
    }

    fn clean_wire(seq: u32) -> Vec<u8> {
        let e = series();
        wrap_with_network_id(e.network_id, &TestPacket { seq }.build_frame(e.src, e.dst))
    }

    #[test]
    fn clean_packet_is_undamaged() {
        let p = classify_record(0, &record(clean_wire(10)), &series());
        assert!(p.is_test);
        assert_eq!(p.class, PacketClass::Undamaged);
        assert_eq!(p.seq, Some(10));
        assert_eq!(p.body_bit_errors, 0);
        assert_eq!(p.body_bits_received, 8192);
    }

    #[test]
    fn body_corruption_is_counted_exactly() {
        let mut wire = clean_wire(10);
        let body = wavelan_mac::network_id::NETWORK_ID_LEN + TestPacket::body_offset();
        wire[body + 5] ^= 0b101; // 2 bits in word 1
        wire[body + 400] ^= 0b1; // 1 bit in word 100
        let p = classify_record(0, &record(wire), &series());
        assert_eq!(p.class, PacketClass::BodyDamaged);
        assert_eq!(p.body_bit_errors, 3);
        assert_eq!(p.seq, Some(10));
    }

    #[test]
    fn truncated_packet_has_no_syndrome() {
        let wire = clean_wire(10);
        let cut = wire[..600].to_vec();
        let p = classify_record(0, &record(cut), &series());
        assert_eq!(p.class, PacketClass::Truncated);
        assert_eq!(p.body_bit_errors, 0);
        // 600 − 44 header bytes = 556 body bytes = 139 words = 4448 bits.
        assert_eq!(p.body_bits_received, 4448);
    }

    #[test]
    fn header_corruption_is_wrapper_damage() {
        let mut wire = clean_wire(10);
        wire[20] ^= 0x40; // inside the IP header
        let p = classify_record(0, &record(wire), &series());
        assert_eq!(p.class, PacketClass::WrapperDamaged);
        assert_eq!(p.body_bit_errors, 0);
    }

    #[test]
    fn network_id_corruption_is_wrapper_damage() {
        let mut wire = clean_wire(10);
        wire[0] ^= 0x01;
        let p = classify_record(0, &record(wire), &series());
        assert!(p.is_test, "one flipped ID bit must not unmatch the packet");
        assert_eq!(p.class, PacketClass::WrapperDamaged);
    }

    #[test]
    fn fcs_trailer_corruption_is_wrapper_damage() {
        let mut wire = clean_wire(10);
        let last = wire.len() - 1;
        wire[last] ^= 0x10;
        let p = classify_record(0, &record(wire), &series());
        assert_eq!(p.class, PacketClass::WrapperDamaged);
    }

    #[test]
    fn foreign_packet_is_outsider() {
        let eth = wavelan_net::EthernetFrame::build(
            wavelan_net::MacAddr::BROADCAST,
            wavelan_net::MacAddr([0x00, 0xA0, 0x24, 1, 2, 3]),
            wavelan_net::EtherType::Arp,
            &[7u8; 46],
        );
        let wire = wrap_with_network_id(NetworkId(9), &eth);
        let p = classify_record(0, &record(wire.clone()), &series());
        assert!(!p.is_test);
        assert_eq!(p.class, PacketClass::Undamaged); // its own FCS is fine

        let mut damaged = wire;
        damaged[20] ^= 0xFF;
        let p = classify_record(0, &record(damaged), &series());
        assert!(!p.is_test);
        assert_eq!(p.class, PacketClass::BodyDamaged);
    }

    /// A sized test-style frame (the pulsed-interference sweeps' frames):
    /// unicast, ethertype 0x88B5, `body` bytes of mostly-zero body, wrapped
    /// with the testbed network ID — exactly what
    /// `wavelan_sim::runner::sized_frame` puts on the air.
    fn sized_wire(seq: u32, body_len: usize) -> Vec<u8> {
        let e = series();
        let mut body = vec![0u8; body_len.max(46)];
        body[..4].copy_from_slice(&seq.to_be_bytes());
        body[4..10].copy_from_slice(e.src.mac.as_bytes());
        let eth = wavelan_net::EthernetFrame::build(
            e.dst.mac,
            e.src.mac,
            wavelan_net::EtherType::Other(0x88B5),
            &body,
        );
        wrap_with_network_id(e.network_id, &eth)
    }

    #[test]
    fn complete_small_sized_frame_is_not_truncated() {
        // The PR 8 bug: a complete 64-byte-body frame is shorter than the
        // fixed test-packet length, and a classifier keyed on that length
        // called it Truncated. With per-record wire length it is complete.
        let wire = sized_wire(3, 64);
        assert!(wire.len() < matcher::full_wire_len());
        let rec = TraceRecord {
            wire_len: wire.len() as u32,
            ..record(wire)
        };
        let p = classify_record(0, &rec, &series());
        assert!(p.is_test, "sized frames belong to the test series");
        assert_ne!(p.class, PacketClass::Truncated);
    }

    #[test]
    fn oversize_sized_frame_truncated_past_standard_length_is_truncated() {
        // Dual of the bug: a 1500-byte-body frame cut at 1200 delivered
        // bytes is truncated, but 1200 exceeds the fixed test-packet length
        // so the old classifier called it complete.
        let wire = sized_wire(4, 1500);
        assert!(wire.len() > matcher::full_wire_len());
        let cut = wire[..1200].to_vec();
        let rec = TraceRecord {
            wire_len: wire.len() as u32,
            ..record(cut)
        };
        let p = classify_record(0, &rec, &series());
        assert!(p.is_test);
        assert_eq!(p.class, PacketClass::Truncated);
    }

    #[test]
    fn trace_level_aggregation() {
        let mut trace = Trace {
            packets_transmitted: 4,
            ..Trace::default()
        };
        trace.push(record(clean_wire(0)));
        trace.push(record(clean_wire(1)));
        let mut damaged = clean_wire(2);
        let body = wavelan_mac::network_id::NETWORK_ID_LEN + TestPacket::body_offset();
        damaged[body] ^= 0xFF;
        trace.push(record(damaged));
        // Packet 3 was lost: not in the trace.
        let analysis = classify_trace(&trace, &series());
        assert_eq!(analysis.test_packets().count(), 3);
        assert_eq!(analysis.count(PacketClass::Undamaged), 2);
        assert_eq!(analysis.count(PacketClass::BodyDamaged), 1);
        assert!((analysis.packet_loss() - 0.25).abs() < 1e-12);
        assert!((analysis.body_ber() - 8.0 / (3.0 * 8192.0)).abs() < 1e-12);
        let (level, _, _) = analysis.stats_where(|p| p.is_test);
        assert_eq!(level.count(), 3);
        assert_eq!(level.mean(), 29.0);
    }
}
