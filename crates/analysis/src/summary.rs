//! Per-trial aggregation into the paper's Table 1 column set.
//!
//! | Column            | Meaning (paper Table 1)                                 |
//! |-------------------|---------------------------------------------------------|
//! | Packets Received  | Test packets received                                   |
//! | Packet Loss       | Percentage of transmitted test packets that were lost   |
//! | Packets Truncated | Number of received test packets which were truncated    |
//! | Bits Received     | Number of *body* bits received, rounded down            |
//! | Wrapper Damaged   | Number of packets with damaged headers or trailers      |
//! | Body Bits         | Total number of body bits damaged in trial              |
//! | Worst Body        | Number of bits damaged in most-corrupted packet body    |

use crate::classify::{PacketClass, TraceAnalysis};

/// One row of a Table 2 / 5 / 8-style results table.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSummary {
    /// Trial label (e.g. `office1`, `Tx5`).
    pub name: String,
    /// Test packets received.
    pub packets_received: u64,
    /// Fraction of transmitted test packets lost (0.0–1.0).
    pub packet_loss: f64,
    /// Received test packets that were truncated.
    pub packets_truncated: u64,
    /// Body bits received across all test packets.
    pub bits_received: u64,
    /// Packets with damaged headers or trailers.
    pub wrapper_damaged: u64,
    /// Total damaged body bits.
    pub body_bits_damaged: u64,
    /// Damaged bits in the most-corrupted single body (0 if none).
    pub worst_body: u32,
}

impl TrialSummary {
    /// Builds the summary row from an analyzed trace.
    pub fn from_analysis(name: &str, analysis: &TraceAnalysis) -> TrialSummary {
        TrialSummary {
            name: name.to_string(),
            packets_received: analysis.test_packets().count() as u64,
            packet_loss: analysis.packet_loss(),
            packets_truncated: analysis.count(PacketClass::Truncated) as u64,
            bits_received: analysis.test_packets().map(|p| p.body_bits_received).sum(),
            wrapper_damaged: analysis.count(PacketClass::WrapperDamaged) as u64,
            body_bits_damaged: analysis
                .test_packets()
                .map(|p| u64::from(p.body_bit_errors))
                .sum(),
            worst_body: analysis
                .test_packets()
                .map(|p| p.body_bit_errors)
                .max()
                .unwrap_or(0),
        }
    }

    /// Loss as the paper prints it: a percentage with two significant
    /// decimals, e.g. `.03%`.
    pub fn loss_percent_string(&self) -> String {
        format_loss_percent(self.packet_loss)
    }

    /// Bits received in the paper's power-of-ten shorthand (`8 × 10^8`).
    pub fn bits_received_string(&self) -> String {
        format_power_of_ten(self.bits_received)
    }
}

/// Formats a loss fraction in the paper's percent style: `0%`, `.030%`
/// below a tenth of a percent, two decimals otherwise.
pub fn format_loss_percent(fraction: f64) -> String {
    let pct = fraction * 100.0;
    if pct == 0.0 {
        "0%".to_string()
    } else if pct < 0.1 {
        format!(".{:03.0}%", pct * 1000.0).replace(".0", ".0") // e.g. .007%
    } else {
        format!("{pct:.2}%")
    }
}

/// Formats a bit count in the paper's power-of-ten shorthand (`8 x 10^8`,
/// or `10^9` when the mantissa rounds to one).
pub fn format_power_of_ten(bits: u64) -> String {
    if bits == 0 {
        return "0".to_string();
    }
    let exp = (bits as f64).log10().floor() as u32;
    let mantissa = bits as f64 / 10f64.powi(exp as i32);
    if (mantissa - 1.0).abs() < 0.05 {
        format!("10^{exp}")
    } else {
        format!("{mantissa:.0} x 10^{exp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::AnalyzedPacket;

    fn packet(class: PacketClass, errors: u32, bits: u64) -> AnalyzedPacket {
        AnalyzedPacket {
            index: 0,
            is_test: true,
            class,
            seq: Some(0),
            body_bit_errors: errors,
            body_bits_received: bits,
            level: 29,
            silence: 3,
            quality: 15,
        }
    }

    fn analysis() -> TraceAnalysis {
        TraceAnalysis {
            packets: vec![
                packet(PacketClass::Undamaged, 0, 8192),
                packet(PacketClass::Undamaged, 0, 8192),
                packet(PacketClass::BodyDamaged, 7, 8192),
                packet(PacketClass::BodyDamaged, 75, 8192),
                packet(PacketClass::Truncated, 0, 4000),
                packet(PacketClass::WrapperDamaged, 0, 8192),
            ],
            transmitted: 8,
        }
    }

    #[test]
    fn summary_columns() {
        let s = TrialSummary::from_analysis("Tx5", &analysis());
        assert_eq!(s.packets_received, 6);
        assert!((s.packet_loss - 0.25).abs() < 1e-12);
        assert_eq!(s.packets_truncated, 1);
        assert_eq!(s.bits_received, 8192 * 5 + 4000);
        assert_eq!(s.wrapper_damaged, 1);
        assert_eq!(s.body_bits_damaged, 82);
        assert_eq!(s.worst_body, 75);
    }

    #[test]
    fn empty_analysis() {
        let a = TraceAnalysis {
            packets: vec![],
            transmitted: 0,
        };
        let s = TrialSummary::from_analysis("empty", &a);
        assert_eq!(s.packets_received, 0);
        assert_eq!(s.worst_body, 0);
        assert_eq!(s.packet_loss, 0.0);
        assert_eq!(s.bits_received_string(), "0");
    }

    #[test]
    fn formatting_helpers() {
        let mut s = TrialSummary::from_analysis("t", &analysis());
        s.packet_loss = 0.0003;
        assert_eq!(s.loss_percent_string(), ".030%");
        s.packet_loss = 0.0;
        assert_eq!(s.loss_percent_string(), "0%");
        s.packet_loss = 0.52;
        assert_eq!(s.loss_percent_string(), "52.00%");

        s.bits_received = 1_000_000_000;
        assert_eq!(s.bits_received_string(), "10^9");
        s.bits_received = 800_000_000;
        assert_eq!(s.bits_received_string(), "8 x 10^8");
    }
}
