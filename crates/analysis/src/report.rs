//! Plain-text table rendering in the paper's style.
//!
//! Two table shapes cover all thirteen of the paper's tables:
//!
//! * the *results* table (Tables 2, 5, 8, 11): one row per trial with the
//!   Table 1 column set — rendered by [`render_results_table`];
//! * the *signal metrics* table (Tables 3, 4, 6, 7, 9, 10, 12, 13, 14): one
//!   row per trial or packet class with `↓ μ (σ) ↑` cells for level, silence
//!   and quality — rendered by [`render_signal_table`].

use crate::stats::SignalStats;
use crate::summary::TrialSummary;

/// One row of a signal-metrics table.
#[derive(Debug, Clone)]
pub struct SignalRow {
    /// Row label (trial name or packet class).
    pub name: String,
    /// Packets in the row.
    pub packets: u64,
    /// Level statistics.
    pub level: SignalStats,
    /// Silence statistics.
    pub silence: SignalStats,
    /// Quality statistics.
    pub quality: SignalStats,
}

impl SignalRow {
    /// Builds a row from the `(level, silence, quality)` triple that
    /// [`crate::classify::TraceAnalysis::stats_where`] returns.
    pub fn new(name: &str, stats: (SignalStats, SignalStats, SignalStats)) -> SignalRow {
        SignalRow {
            name: name.to_string(),
            packets: stats.0.count(),
            level: stats.0,
            silence: stats.1,
            quality: stats.2,
        }
    }
}

/// Renders a results table (the Table 2 / 5 / 8 / 11 shape).
pub fn render_results_table(title: &str, rows: &[TrialSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<22} {:>9} {:>8} {:>10} {:>12} {:>8} {:>6} {:>6}\n",
        "Trial", "Received", "Loss", "Truncated", "Bits", "Wrapper", "Body", "Worst"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>9} {:>8} {:>10} {:>12} {:>8} {:>6} {:>6}\n",
            r.name,
            r.packets_received,
            r.loss_percent_string(),
            r.packets_truncated,
            r.bits_received_string(),
            r.wrapper_damaged,
            r.body_bits_damaged,
            if r.body_bits_damaged == 0 {
                "-".to_string()
            } else {
                r.worst_body.to_string()
            },
        ));
    }
    out
}

/// Renders a signal-metrics table (the Table 3 / 6 / 9 / 12 shape).
pub fn render_signal_table(title: &str, rows: &[SignalRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<28} {:>8}  {:^22}  {:^22}  {:^22}\n",
        "Row",
        "Packets",
        "Level  v mean (sd) ^",
        "Silence  v mean (sd) ^",
        "Quality  v mean (sd) ^"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>8}  {:>22}  {:>22}  {:>22}\n",
            r.name,
            r.packets,
            r.level.cell(),
            r.silence.cell(),
            r.quality.cell(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_table_renders_all_rows() {
        let rows = vec![
            TrialSummary {
                name: "office1".into(),
                packets_received: 102_720,
                packet_loss: 0.0003,
                packets_truncated: 1,
                bits_received: 800_000_000,
                wrapper_damaged: 0,
                body_bits_damaged: 0,
                worst_body: 0,
            },
            TrialSummary {
                name: "Tx5".into(),
                packets_received: 1_440,
                packet_loss: 0.0007,
                packets_truncated: 1,
                bits_received: 10_000_000,
                wrapper_damaged: 0,
                body_bits_damaged: 82,
                worst_body: 7,
            },
        ];
        let table = render_results_table("Table 2: in-room", &rows);
        assert!(table.contains("office1"));
        assert!(table.contains("102720"));
        assert!(table.contains("8 x 10^8"));
        assert!(table.contains("Tx5"));
        assert!(table.contains("82"));
        // Zero damage prints a dash, like the paper.
        assert!(table.lines().nth(2).unwrap().trim_end().ends_with('-'));
    }

    #[test]
    fn signal_table_renders_stats_cells() {
        let mut level = SignalStats::new();
        let mut silence = SignalStats::new();
        let mut quality = SignalStats::new();
        for v in [25u8, 26, 28] {
            level.push(v);
        }
        for v in [0u8, 2, 4] {
            silence.push(v);
        }
        for _ in 0..3 {
            quality.push(15);
        }
        let row = SignalRow::new("All test packets", (level, silence, quality));
        assert_eq!(row.packets, 3);
        let table = render_signal_table("Table 3", &[row]);
        assert!(table.contains("All test packets"));
        assert!(table.contains("26.33"));
        assert!(table.contains("15.00"));
    }
}
