//! Structured reports and the one generic plain-text renderer.
//!
//! Every artifact the reproduction emits — the paper's thirteen tables,
//! three figures, and the extension studies — is built as a [`Report`]: a
//! value model of typed blocks ([`Table`] with a column schema and typed
//! [`Cell`]s, free-form [`Note`](Block::Note) prose, [`Blank`](Block::Blank)
//! separators). Text output is then *one* renderer walking that model
//! ([`render_blocks`]), and machine output is the same model serialized
//! through [`crate::json`].
//!
//! Two recurring table shapes get builder helpers:
//!
//! * the *results* table (Tables 2, 5, 8, 11): one row per trial with the
//!   Table 1 column set — [`results_table`];
//! * the *signal metrics* table (Tables 3, 4, 6, 7, 9, 10, 12, 13, 14): one
//!   row per trial or packet class with `↓ μ (σ) ↑` cells for level, silence
//!   and quality — [`signal_table`].
//!
//! The paper's original renderings were hand-aligned, so headers do not
//! always share a format spec with their data cells; [`Column`] carries
//! optional header-only overrides (`header_width`, `header_align`,
//! `header_sep`) to reproduce those layouts bit-for-bit.

use crate::stats::SignalStats;
use crate::summary::{format_loss_percent, format_power_of_ten, TrialSummary};
use serde::{Serialize, SerializeStruct, Serializer};

/// Horizontal alignment of a cell within its column width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left.
    Right,
    /// Pad on both sides.
    Center,
}

/// One column of a [`Table`]: a machine-readable name plus the layout spec
/// the text renderer uses.
#[derive(Debug, Clone)]
pub struct Column {
    /// Machine-readable column name (serialized; stable across layouts).
    pub name: &'static str,
    /// Header text; empty for headerless columns.
    pub header: &'static str,
    /// Cell width in characters (0 = unpadded).
    pub width: usize,
    /// Cell alignment.
    pub align: Align,
    /// Text emitted before the cell (column separator).
    pub sep: &'static str,
    /// Text emitted after the cell (a unit such as `%` or `ft`).
    pub suffix: &'static str,
    /// Decimal places for [`Cell::Float`] values.
    pub precision: usize,
    /// Header width when it differs from the cell width.
    pub header_width: Option<usize>,
    /// Header alignment when it differs from the cell alignment.
    pub header_align: Option<Align>,
    /// Header separator when it differs from the cell separator.
    pub header_sep: Option<&'static str>,
}

impl Column {
    /// A right-aligned, unpadded column with a single-space separator.
    pub fn new(name: &'static str, header: &'static str) -> Column {
        Column {
            name,
            header,
            width: 0,
            align: Align::Right,
            sep: " ",
            suffix: "",
            precision: 0,
            header_width: None,
            header_align: None,
            header_sep: None,
        }
    }

    /// Sets the cell width.
    pub fn width(mut self, width: usize) -> Column {
        self.width = width;
        self
    }

    /// Left-aligns cells.
    pub fn left(mut self) -> Column {
        self.align = Align::Left;
        self
    }

    /// Sets the column separator (text before each cell).
    pub fn sep(mut self, sep: &'static str) -> Column {
        self.sep = sep;
        self
    }

    /// Sets the cell suffix (a unit such as `%` or `ft`).
    pub fn suffix(mut self, suffix: &'static str) -> Column {
        self.suffix = suffix;
        self
    }

    /// Sets the decimal places for [`Cell::Float`] values.
    pub fn precision(mut self, precision: usize) -> Column {
        self.precision = precision;
        self
    }

    /// Overrides the header width.
    pub fn header_width(mut self, width: usize) -> Column {
        self.header_width = Some(width);
        self
    }

    /// Overrides the header alignment.
    pub fn header_align(mut self, align: Align) -> Column {
        self.header_align = Some(align);
        self
    }

    /// Overrides the header separator.
    pub fn header_sep(mut self, sep: &'static str) -> Column {
        self.header_sep = Some(sep);
        self
    }

    /// Suppresses this column's header cell entirely (separator included) —
    /// used where a data column has no header of its own, e.g. the packet
    /// count inside `delivered/packets`.
    pub fn no_header(mut self) -> Column {
        self.header = "";
        self.header_width = Some(0);
        self
    }
}

/// The `↓ μ (σ) ↑` quadruple of a signal-metrics cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsCell {
    /// Minimum observed value.
    pub min: u8,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub sd: f64,
    /// Maximum observed value.
    pub max: u8,
}

impl From<&SignalStats> for StatsCell {
    fn from(stats: &SignalStats) -> StatsCell {
        StatsCell {
            min: stats.min(),
            mean: stats.mean(),
            sd: stats.std_dev(),
            max: stats.max(),
        }
    }
}

/// One typed table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free text (row labels, flags such as `ERROR`/`ok`).
    Str(String),
    /// An unsigned count.
    UInt(u64),
    /// A floating-point value, rendered at the column's precision.
    Float(f64),
    /// A `↓ μ (σ) ↑` signal-statistics quadruple.
    Stats(StatsCell),
    /// A horizontal bar of `#` marks (Figure 1's profile).
    Bar(u64),
    /// A loss fraction, rendered in the paper's percent style (`.030%`).
    LossPercent(f64),
    /// A bit count, rendered in the paper's power-of-ten shorthand
    /// (`8 x 10^8`).
    PowerOfTen(u64),
    /// A count that renders as `-` when zero, like the paper's Worst column.
    DashIfZero(u64),
}

impl Cell {
    /// Renders the cell's text before column padding is applied.
    fn text(&self, precision: usize) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::UInt(v) => v.to_string(),
            Cell::Float(v) => format!("{v:.precision$}"),
            Cell::Stats(s) => {
                format!("{:>2} {:>5.2} ({:>5.2}) {:>2}", s.min, s.mean, s.sd, s.max)
            }
            Cell::Bar(n) => "#".repeat(*n as usize),
            Cell::LossPercent(f) => format_loss_percent(*f),
            Cell::PowerOfTen(bits) => format_power_of_ten(*bits),
            Cell::DashIfZero(v) => {
                if *v == 0 {
                    "-".to_string()
                } else {
                    v.to_string()
                }
            }
        }
    }
}

/// One field of a [`StatsCell`], for numeric extraction from signal-metrics
/// columns (see [`Cell::stat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatField {
    /// The minimum.
    Min,
    /// The mean.
    Mean,
    /// The standard deviation.
    Sd,
    /// The maximum.
    Max,
}

impl Cell {
    /// The cell's numeric value, if it has one. [`Cell::Stats`] has four —
    /// use [`Cell::stat`]; [`Cell::Str`] has none.
    pub fn number(&self) -> Option<f64> {
        match self {
            Cell::Str(_) | Cell::Stats(_) => None,
            Cell::UInt(v) | Cell::Bar(v) | Cell::PowerOfTen(v) | Cell::DashIfZero(v) => {
                Some(*v as f64)
            }
            Cell::Float(v) | Cell::LossPercent(v) => Some(*v),
        }
    }

    /// One field of a [`Cell::Stats`] quadruple.
    pub fn stat(&self, field: StatField) -> Option<f64> {
        match self {
            Cell::Stats(s) => Some(match field {
                StatField::Min => f64::from(s.min),
                StatField::Mean => s.mean,
                StatField::Sd => s.sd,
                StatField::Max => f64::from(s.max),
            }),
            _ => None,
        }
    }

    /// The row label this cell contributes, if it is textual.
    pub fn label(&self) -> Option<&str> {
        match self {
            Cell::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Str(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Str(s)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Cell {
        Cell::UInt(v)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Cell {
        Cell::Float(v)
    }
}

impl From<&SignalStats> for Cell {
    fn from(stats: &SignalStats) -> Cell {
        Cell::Stats(StatsCell::from(stats))
    }
}

/// A table: optional heading line, column schema, typed rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Heading printed on its own line(s) above the table, if any.
    pub heading: Option<String>,
    /// Column schema.
    pub columns: Vec<Column>,
    /// Rows of cells, one [`Cell`] per [`Column`].
    pub rows: Vec<Vec<Cell>>,
}

fn pad(text: &str, width: usize, align: Align) -> String {
    match align {
        Align::Left => format!("{text:<width$}"),
        Align::Right => format!("{text:>width$}"),
        Align::Center => format!("{text:^width$}"),
    }
}

impl Table {
    /// Index of the column with the given machine-readable name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The first row whose first cell is the given text label (trimmed —
    /// some layouts indent sub-rows like `  Outsiders`).
    pub fn row_by_label(&self, label: &str) -> Option<&[Cell]> {
        self.rows
            .iter()
            .find(|r| {
                r.first()
                    .and_then(Cell::label)
                    .map(str::trim)
                    .is_some_and(|l| l == label.trim())
            })
            .map(Vec::as_slice)
    }

    /// Renders the heading, header line (if any column has one) and rows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(heading) = &self.heading {
            out.push_str(heading);
            out.push('\n');
        }
        if self.columns.iter().any(|c| !c.header.is_empty()) {
            for c in &self.columns {
                if c.header.is_empty() && c.header_width == Some(0) {
                    continue;
                }
                out.push_str(c.header_sep.unwrap_or(c.sep));
                out.push_str(&pad(
                    c.header,
                    c.header_width.unwrap_or(c.width),
                    c.header_align.unwrap_or(c.align),
                ));
            }
            out.push('\n');
        }
        for row in &self.rows {
            for (c, cell) in self.columns.iter().zip(row) {
                out.push_str(c.sep);
                out.push_str(&pad(&cell.text(c.precision), c.width, c.align));
                out.push_str(c.suffix);
            }
            out.push('\n');
        }
        out
    }
}

/// One block of a [`Report`].
#[derive(Debug, Clone)]
pub enum Block {
    /// A table.
    Table(Table),
    /// Free prose, rendered verbatim followed by a newline (may itself
    /// contain newlines).
    Note(String),
    /// A blank separator line.
    Blank,
}

impl Block {
    /// Convenience constructor for a [`Block::Note`].
    pub fn note(text: impl Into<String>) -> Block {
        Block::Note(text.into())
    }
}

/// Renders blocks to text by pure concatenation — no implicit separators.
pub fn render_blocks(blocks: &[Block]) -> String {
    let mut out = String::new();
    for block in blocks {
        match block {
            Block::Table(t) => out.push_str(&t.render()),
            Block::Note(text) => {
                out.push_str(text);
                out.push('\n');
            }
            Block::Blank => out.push('\n'),
        }
    }
    out
}

/// A complete artifact report: identity, packet budget, content blocks.
#[derive(Debug, Clone)]
pub struct Report {
    /// Registry artifact name (`table2`, `figure1`, …).
    pub artifact: &'static str,
    /// One-line human title (first heading or note line of the content).
    pub title: String,
    /// The paper artifact this reproduces (e.g. `Table 2 (in-room base
    /// case)`).
    pub paper_artifact: &'static str,
    /// Requested test-packet transmissions at the scale the report was run
    /// at (the budget, not the stochastic delivery count).
    pub packets: u64,
    /// Content blocks in render order.
    pub blocks: Vec<Block>,
}

impl Report {
    /// Builds a report, deriving [`Report::title`] from the first heading or
    /// note line in `blocks`.
    pub fn new(
        artifact: &'static str,
        paper_artifact: &'static str,
        packets: u64,
        blocks: Vec<Block>,
    ) -> Report {
        let title = blocks
            .iter()
            .find_map(|b| match b {
                Block::Table(t) => t
                    .heading
                    .as_deref()
                    .and_then(|h| h.lines().next())
                    .map(str::to_string),
                Block::Note(n) => n.lines().next().map(str::to_string),
                Block::Blank => None,
            })
            .unwrap_or_default();
        Report {
            artifact,
            title,
            paper_artifact,
            packets,
            blocks,
        }
    }

    /// Renders the report to the exact text the paper-style tables use.
    pub fn render(&self) -> String {
        render_blocks(&self.blocks)
    }

    /// All table blocks, in render order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.blocks.iter().filter_map(|b| match b {
            Block::Table(t) => Some(t),
            _ => None,
        })
    }

    /// The first table whose heading starts with `prefix` (e.g. `"Table 6"`
    /// finds `Table 6: Signal metrics for multi-room experiment`).
    pub fn table_by_heading(&self, prefix: &str) -> Option<&Table> {
        self.tables()
            .find(|t| t.heading.as_deref().is_some_and(|h| h.starts_with(prefix)))
    }
}

/// Column schema of the paper's Table 1 results shape.
fn results_columns() -> Vec<Column> {
    vec![
        Column::new("trial", "Trial").width(22).left().sep(""),
        Column::new("received", "Received").width(9),
        Column::new("loss", "Loss").width(8),
        Column::new("truncated", "Truncated").width(10),
        Column::new("bits", "Bits").width(12),
        Column::new("wrapper", "Wrapper").width(8),
        Column::new("body", "Body").width(6),
        Column::new("worst", "Worst").width(6),
    ]
}

/// Builds a results table (the Table 2 / 5 / 8 / 11 shape).
pub fn results_table(title: &str, rows: &[TrialSummary]) -> Table {
    Table {
        heading: Some(title.to_string()),
        columns: results_columns(),
        rows: rows
            .iter()
            .map(|r| {
                vec![
                    Cell::Str(r.name.clone()),
                    Cell::UInt(r.packets_received),
                    Cell::LossPercent(r.packet_loss),
                    Cell::UInt(r.packets_truncated),
                    Cell::PowerOfTen(r.bits_received),
                    Cell::UInt(r.wrapper_damaged),
                    Cell::UInt(r.body_bits_damaged),
                    Cell::DashIfZero(u64::from(r.worst_body)),
                ]
            })
            .collect(),
    }
}

/// Column schema of the signal-metrics shape.
fn signal_columns() -> Vec<Column> {
    vec![
        Column::new("row", "Row").width(28).left().sep(""),
        Column::new("packets", "Packets").width(8),
        Column::new("level", "Level  v mean (sd) ^")
            .width(22)
            .sep("  ")
            .header_align(Align::Center),
        Column::new("silence", "Silence  v mean (sd) ^")
            .width(22)
            .sep("  ")
            .header_align(Align::Center),
        Column::new("quality", "Quality  v mean (sd) ^")
            .width(22)
            .sep("  ")
            .header_align(Align::Center),
    ]
}

/// Builds a signal-metrics table (the Table 3 / 6 / 9 / 12 shape).
pub fn signal_table(title: &str, rows: &[SignalRow]) -> Table {
    Table {
        heading: Some(title.to_string()),
        columns: signal_columns(),
        rows: rows
            .iter()
            .map(|r| {
                vec![
                    Cell::Str(r.name.clone()),
                    Cell::UInt(r.packets),
                    Cell::from(&r.level),
                    Cell::from(&r.silence),
                    Cell::from(&r.quality),
                ]
            })
            .collect(),
    }
}

/// One row of a signal-metrics table.
#[derive(Debug, Clone)]
pub struct SignalRow {
    /// Row label (trial name or packet class).
    pub name: String,
    /// Packets in the row.
    pub packets: u64,
    /// Level statistics.
    pub level: SignalStats,
    /// Silence statistics.
    pub silence: SignalStats,
    /// Quality statistics.
    pub quality: SignalStats,
}

impl SignalRow {
    /// Builds a row from the `(level, silence, quality)` triple that
    /// [`crate::classify::TraceAnalysis::stats_where`] returns.
    pub fn new(name: &str, stats: (SignalStats, SignalStats, SignalStats)) -> SignalRow {
        SignalRow {
            name: name.to_string(),
            packets: stats.0.count(),
            level: stats.0,
            silence: stats.1,
            quality: stats.2,
        }
    }
}

/// Renders a results table (the Table 2 / 5 / 8 / 11 shape).
pub fn render_results_table(title: &str, rows: &[TrialSummary]) -> String {
    results_table(title, rows).render()
}

/// Renders a signal-metrics table (the Table 3 / 6 / 9 / 12 shape).
pub fn render_signal_table(title: &str, rows: &[SignalRow]) -> String {
    signal_table(title, rows).render()
}

impl Serialize for StatsCell {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("StatsCell", 4)?;
        s.serialize_field("min", &self.min)?;
        s.serialize_field("mean", &self.mean)?;
        s.serialize_field("sd", &self.sd)?;
        s.serialize_field("max", &self.max)?;
        s.end()
    }
}

impl Serialize for Cell {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Cell::Str(v) => serializer.serialize_str(v),
            Cell::UInt(v) | Cell::Bar(v) | Cell::PowerOfTen(v) | Cell::DashIfZero(v) => {
                serializer.serialize_u64(*v)
            }
            Cell::Float(v) | Cell::LossPercent(v) => serializer.serialize_f64(*v),
            Cell::Stats(stats) => stats.serialize(serializer),
        }
    }
}

impl Serialize for Column {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Column", 3)?;
        s.serialize_field("name", self.name)?;
        s.serialize_field("header", self.header)?;
        s.serialize_field("suffix", self.suffix)?;
        s.end()
    }
}

impl Serialize for Table {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Table", 4)?;
        s.serialize_field("type", "table")?;
        s.serialize_field("heading", &self.heading)?;
        s.serialize_field("columns", &self.columns)?;
        s.serialize_field("rows", &self.rows)?;
        s.end()
    }
}

impl Serialize for Block {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Block::Table(t) => t.serialize(serializer),
            Block::Note(text) => {
                let mut s = serializer.serialize_struct("Note", 2)?;
                s.serialize_field("type", "note")?;
                s.serialize_field("text", text)?;
                s.end()
            }
            Block::Blank => {
                let mut s = serializer.serialize_struct("Blank", 1)?;
                s.serialize_field("type", "blank")?;
                s.end()
            }
        }
    }
}

impl Serialize for Report {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Report", 5)?;
        s.serialize_field("artifact", self.artifact)?;
        s.serialize_field("title", &self.title)?;
        s.serialize_field("paper_artifact", self.paper_artifact)?;
        s.serialize_field("packets", &self.packets)?;
        s.serialize_field("blocks", &self.blocks)?;
        s.end()
    }
}

/// A full reproduction run as a serializable document: the scale and seed
/// it ran at plus every artifact's [`Report`], in run order.
///
/// This is the canonical machine format for a set of reports — `repro
/// --format json` prints one, and the `wavelan-serve` daemon's
/// `/run/{artifact}` endpoint serves one per artifact. Both go through
/// [`crate::json::to_string_pretty`], so a served response is byte-identical
/// to the CLI output for the same `(artifact, seed, scale)`.
#[derive(Debug, Clone)]
pub struct RunDocument {
    /// Scale name (`smoke`, `reduced`, `paper`).
    pub scale: &'static str,
    /// Base seed of the run.
    pub seed: u64,
    /// One report per artifact run.
    pub artifacts: Vec<Report>,
}

impl Serialize for RunDocument {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("RunDocument", 3)?;
        s.serialize_field("scale", &self.scale)?;
        s.serialize_field("seed", &self.seed)?;
        s.serialize_field("artifacts", &self.artifacts)?;
        s.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_table_renders_all_rows() {
        let rows = vec![
            TrialSummary {
                name: "office1".into(),
                packets_received: 102_720,
                packet_loss: 0.0003,
                packets_truncated: 1,
                bits_received: 800_000_000,
                wrapper_damaged: 0,
                body_bits_damaged: 0,
                worst_body: 0,
            },
            TrialSummary {
                name: "Tx5".into(),
                packets_received: 1_440,
                packet_loss: 0.0007,
                packets_truncated: 1,
                bits_received: 10_000_000,
                wrapper_damaged: 0,
                body_bits_damaged: 82,
                worst_body: 7,
            },
        ];
        let table = render_results_table("Table 2: in-room", &rows);
        assert!(table.contains("office1"));
        assert!(table.contains("102720"));
        assert!(table.contains("8 x 10^8"));
        assert!(table.contains("Tx5"));
        assert!(table.contains("82"));
        // Zero damage prints a dash, like the paper.
        assert!(table.lines().nth(2).unwrap().trim_end().ends_with('-'));
    }

    #[test]
    fn signal_table_renders_stats_cells() {
        let mut level = SignalStats::new();
        let mut silence = SignalStats::new();
        let mut quality = SignalStats::new();
        for v in [25u8, 26, 28] {
            level.push(v);
        }
        for v in [0u8, 2, 4] {
            silence.push(v);
        }
        for _ in 0..3 {
            quality.push(15);
        }
        let row = SignalRow::new("All test packets", (level, silence, quality));
        assert_eq!(row.packets, 3);
        let table = render_signal_table("Table 3", &[row]);
        assert!(table.contains("All test packets"));
        assert!(table.contains("26.33"));
        assert!(table.contains("15.00"));
    }

    #[test]
    fn header_overrides_and_skips() {
        let table = Table {
            heading: None,
            columns: vec![
                Column::new("a", "a").width(4).sep(""),
                Column::new("b", "bee").width(2).header_width(5),
                Column::new("skip", "").width(3).no_header(),
                Column::new("c", "c").width(2).header_sep("   "),
            ],
            rows: vec![vec![
                Cell::UInt(1),
                Cell::UInt(2),
                Cell::Str("x".into()),
                Cell::UInt(3),
            ]],
        };
        let text = table.render();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("   a   bee    c"));
        assert_eq!(lines.next(), Some("   1  2   x  3"));
    }

    #[test]
    fn headerless_table_has_no_header_line() {
        let table = Table {
            heading: Some("title".into()),
            columns: vec![Column::new("v", "").width(3).sep("").precision(1)],
            rows: vec![vec![Cell::Float(1.25)]],
        };
        assert_eq!(table.render(), "title\n1.2\n");
    }

    #[test]
    fn cell_extraction_by_column_and_label() {
        let mut level = SignalStats::new();
        for v in [25u8, 26, 28] {
            level.push(v);
        }
        let silence = SignalStats::new();
        let quality = SignalStats::new();
        let row = SignalRow::new("  Outsiders", (level, silence, quality));
        let table = signal_table("Table 9: x", &[row]);
        let report = Report::new("t", "Table 9", 3, vec![Block::Table(table)]);
        let t = report.table_by_heading("Table 9:").expect("found");
        assert!(report.table_by_heading("Table 8:").is_none());
        let li = t.column_index("level").expect("level column");
        let row = t.row_by_label("Outsiders").expect("trimmed label match");
        assert_eq!(row[li].stat(StatField::Mean), Some(79.0 / 3.0));
        assert_eq!(row[li].stat(StatField::Min), Some(25.0));
        assert_eq!(row[li].number(), None);
        assert_eq!(row[t.column_index("packets").unwrap()].number(), Some(3.0));
        assert!(t.row_by_label("missing").is_none());
    }

    #[test]
    fn report_title_comes_from_first_content_line() {
        let report = Report::new(
            "x",
            "Table X",
            7,
            vec![
                Block::Blank,
                Block::note("first line\nsecond line"),
                Block::note("later"),
            ],
        );
        assert_eq!(report.title, "first line");
        assert_eq!(report.render(), "\nfirst line\nsecond line\nlater\n");
        assert_eq!(report.packets, 7);
    }
}
