//! Constant-memory streaming analysis: the classifier and Table 1
//! aggregation as a [`TraceSink`] fold.
//!
//! The buffered pipeline materializes a whole [`wavelan_sim::Trace`], then a
//! whole [`crate::classify::TraceAnalysis`], before aggregating — memory
//! linear in trial length. [`StreamAnalysis`] folds each record the moment
//! the event loop resolves it and keeps only the aggregates: per-class
//! counts, body-bit totals, the worst single body, and the three
//! [`SignalStats`] accumulators. Steady-state it allocates nothing (the
//! classifier scratch warms up over the first packet), so a streamed run's
//! memory is flat in packet count — the property the allocator-counting
//! tests enforce.
//!
//! The fold is bit-identical to the buffered path: records arrive in the
//! same order the buffered trace stores them, and every aggregate here
//! reproduces the corresponding [`TrialSummary::from_analysis`] /
//! [`crate::classify::TraceAnalysis::stats_where`] computation exactly.

use crate::classify::{classify_view, ClassifyScratch, PacketClass};
use crate::matcher::ExpectedSeries;
use crate::stats::SignalStats;
use crate::summary::TrialSummary;
use wavelan_sim::trace::{RecordView, TraceSink};
use wavelan_sim::StationId;

/// A streaming fold of one receiver's trace: classify each record on
/// arrival, keep aggregates only.
#[derive(Debug)]
pub struct StreamAnalysis {
    expected: ExpectedSeries,
    station: StationId,
    scratch: ClassifyScratch,
    /// Test packets the sender put on the air (set after the run from the
    /// experimenter's bookkeeping, exactly as the buffered path does).
    transmitted: u64,
    /// All folded records, outsiders included.
    records: u64,
    /// Test packets.
    received: u64,
    truncated: u64,
    wrapper_damaged: u64,
    bits_received: u64,
    body_bits_damaged: u64,
    worst_body: u32,
    level: SignalStats,
    silence: SignalStats,
    quality: SignalStats,
    outsiders: u64,
}

impl StreamAnalysis {
    /// A fold for records captured at `station` against `expected`.
    pub fn new(expected: ExpectedSeries, station: StationId) -> StreamAnalysis {
        StreamAnalysis {
            expected,
            station,
            scratch: ClassifyScratch::new(),
            transmitted: 0,
            records: 0,
            received: 0,
            truncated: 0,
            wrapper_damaged: 0,
            bits_received: 0,
            body_bits_damaged: 0,
            worst_body: 0,
            level: SignalStats::new(),
            silence: SignalStats::new(),
            quality: SignalStats::new(),
            outsiders: 0,
        }
    }

    /// Folds one record in (classify + aggregate). Allocation-free once the
    /// classifier scratch has warmed up.
    pub fn fold(&mut self, view: &RecordView<'_>) {
        let p = classify_view(self.records as usize, view, &self.expected, &mut self.scratch);
        self.records += 1;
        if !p.is_test {
            self.outsiders += 1;
            return;
        }
        self.received += 1;
        match p.class {
            PacketClass::Truncated => self.truncated += 1,
            PacketClass::WrapperDamaged => self.wrapper_damaged += 1,
            PacketClass::Undamaged | PacketClass::BodyDamaged => {}
        }
        self.bits_received += p.body_bits_received;
        self.body_bits_damaged += u64::from(p.body_bit_errors);
        self.worst_body = self.worst_body.max(p.body_bit_errors);
        self.level.push(p.level);
        self.silence.push(p.silence);
        self.quality.push(p.quality);
    }

    /// Records the sender's transmitted count (the loss denominator).
    pub fn set_transmitted(&mut self, transmitted: u64) {
        self.transmitted = transmitted;
    }

    /// Records folded so far, outsiders included.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Folded records that were not recognized as test packets.
    pub fn outsiders(&self) -> u64 {
        self.outsiders
    }

    /// The Table 1 row — matches `TrialSummary::from_analysis` over the
    /// equivalent buffered trace exactly.
    pub fn summary(&self, name: &str) -> TrialSummary {
        TrialSummary {
            name: name.to_string(),
            packets_received: self.received,
            packet_loss: if self.transmitted == 0 {
                0.0
            } else {
                1.0 - (self.received.min(self.transmitted) as f64 / self.transmitted as f64)
            },
            packets_truncated: self.truncated,
            bits_received: self.bits_received,
            wrapper_damaged: self.wrapper_damaged,
            body_bits_damaged: self.body_bits_damaged,
            worst_body: self.worst_body,
        }
    }

    /// The `(level, silence, quality)` statistics over test packets —
    /// matches `TraceAnalysis::stats_where(|p| p.is_test)` exactly.
    pub fn signal_stats(&self) -> (SignalStats, SignalStats, SignalStats) {
        (self.level, self.silence, self.quality)
    }
}

impl TraceSink for StreamAnalysis {
    fn record(&mut self, station: StationId, view: &RecordView<'_>) {
        if station == self.station {
            self.fold(view);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_trace;
    use wavelan_mac::network_id::{wrap_with_network_id, NetworkId};
    use wavelan_net::testpkt::{Endpoint, TestPacket};
    use wavelan_sim::trace::{Trace, TraceRecord};

    fn series() -> ExpectedSeries {
        ExpectedSeries {
            src: Endpoint::station(2),
            dst: Endpoint::station(1),
            network_id: NetworkId::TESTBED,
        }
    }

    fn record(bytes: Vec<u8>) -> TraceRecord {
        TraceRecord {
            time_ns: 0,
            bytes,
            wire_len: crate::matcher::full_wire_len() as u32,
            level: 29,
            silence: 3,
            quality: 15,
            antenna: 0,
            truth: None,
        }
    }

    fn clean_wire(seq: u32) -> Vec<u8> {
        let e = series();
        wrap_with_network_id(e.network_id, &TestPacket { seq }.build_frame(e.src, e.dst))
    }

    /// A small mixed trace: clean, body-damaged, truncated, wrapper-damaged,
    /// and an outsider.
    fn mixed_trace() -> Trace {
        let mut trace = Trace {
            packets_transmitted: 6,
            ..Trace::default()
        };
        trace.push(record(clean_wire(0)));
        let mut damaged = clean_wire(1);
        let body = wavelan_mac::network_id::NETWORK_ID_LEN + TestPacket::body_offset();
        damaged[body] ^= 0xFF;
        damaged[body + 17] ^= 0x01;
        trace.push(record(damaged));
        trace.push(record(clean_wire(2)[..700].to_vec()));
        let mut wrapper = clean_wire(3);
        wrapper[20] ^= 0x40;
        trace.push(record(wrapper));
        let foreign = wavelan_net::EthernetFrame::build(
            wavelan_net::MacAddr::BROADCAST,
            wavelan_net::MacAddr([0x00, 0xA0, 0x24, 9, 9, 9]),
            wavelan_net::EtherType::Arp,
            &[7u8; 46],
        );
        trace.push(record(wrap_with_network_id(NetworkId(9), &foreign)));
        trace
    }

    #[test]
    fn fold_matches_buffered_summary_and_stats() {
        let trace = mixed_trace();
        let analysis = classify_trace(&trace, &series());
        let buffered = TrialSummary::from_analysis("t", &analysis);
        let buffered_stats = analysis.stats_where(|p| p.is_test);

        let mut fold = StreamAnalysis::new(series(), 0);
        for r in &trace.records {
            fold.record(0, &r.view());
        }
        fold.set_transmitted(trace.packets_transmitted);

        assert_eq!(fold.summary("t"), buffered);
        assert_eq!(fold.signal_stats(), buffered_stats);
        assert_eq!(fold.records(), trace.records.len() as u64);
        assert_eq!(fold.outsiders(), analysis.outsiders().count() as u64);
    }

    #[test]
    fn sink_filters_by_station() {
        let mut fold = StreamAnalysis::new(series(), 3);
        let r = record(clean_wire(0));
        fold.record(0, &r.view());
        assert_eq!(fold.records(), 0);
        fold.record(3, &r.view());
        assert_eq!(fold.records(), 1);
    }

    #[test]
    fn empty_fold_is_an_empty_summary() {
        let fold = StreamAnalysis::new(series(), 0);
        let s = fold.summary("empty");
        assert_eq!(s.packets_received, 0);
        assert_eq!(s.packet_loss, 0.0);
        assert_eq!(s.worst_body, 0);
        assert_eq!(fold.signal_stats().0.count(), 0);
    }
}
