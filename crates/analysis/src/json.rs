//! JSON backend for the workspace's serde traits: a pretty-printing
//! [`Serializer`] plus a small [`Value`] parser for round-trip validation.
//!
//! The writer produces deterministic, human-diffable output (2-space
//! indent, short compounds inlined) — the JSON golden transcript is diffed
//! verbatim, exactly like the text golden. Non-finite floats have no JSON
//! representation and serialize as `null`; the report model never produces
//! them (the streaming stats return `0.0` on empty input), so the golden
//! stays numeric.

use serde::{Serialize, SerializeMap, SerializeSeq, SerializeStruct, Serializer};
use std::convert::Infallible;

/// Compounds whose single-line form fits within this many characters are
/// inlined (`[1, 2, 3]`); longer or nested-multiline compounds break one
/// element per line.
const INLINE_LIMIT: usize = 100;

/// Serializes `value` as pretty-printed JSON with a trailing newline.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = match value.serialize(Json { indent: 0 }) {
        Ok(fragment) => fragment,
        Err(e) => match e {},
    };
    out.push('\n');
    out
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Joins rendered child fragments into a `[...]` or `{...}` compound,
/// inlining when every fragment is single-line and the result is short.
fn join(indent: usize, open: char, close: char, items: &[String]) -> String {
    if items.is_empty() {
        return format!("{open}{close}");
    }
    let inline_len = 2 + items.iter().map(|i| i.len() + 2).sum::<usize>();
    if inline_len <= INLINE_LIMIT && items.iter().all(|i| !i.contains('\n')) {
        return format!("{open}{}{close}", items.join(", "));
    }
    let pad = "  ".repeat(indent + 1);
    let mut out = String::new();
    out.push(open);
    out.push('\n');
    for (i, item) in items.iter().enumerate() {
        out.push_str(&pad);
        out.push_str(item);
        if i + 1 < items.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&"  ".repeat(indent));
    out.push(close);
    out
}

/// The JSON [`Serializer`]. Each call renders a complete fragment whose
/// continuation lines (if any) are indented for `indent` nesting levels.
struct Json {
    indent: usize,
}

/// In-progress JSON array.
struct JsonSeq {
    indent: usize,
    items: Vec<String>,
}

/// In-progress JSON object (used for both maps and structs).
struct JsonMap {
    indent: usize,
    entries: Vec<String>,
}

impl Serializer for Json {
    type Ok = String;
    type Error = Infallible;
    type SerializeSeq = JsonSeq;
    type SerializeMap = JsonMap;
    type SerializeStruct = JsonMap;

    fn serialize_bool(self, v: bool) -> Result<String, Infallible> {
        Ok(if v { "true" } else { "false" }.to_string())
    }

    fn serialize_i64(self, v: i64) -> Result<String, Infallible> {
        Ok(v.to_string())
    }

    fn serialize_u64(self, v: u64) -> Result<String, Infallible> {
        Ok(v.to_string())
    }

    fn serialize_f64(self, v: f64) -> Result<String, Infallible> {
        Ok(if v.is_finite() {
            v.to_string()
        } else {
            "null".to_string()
        })
    }

    fn serialize_str(self, v: &str) -> Result<String, Infallible> {
        Ok(quote(v))
    }

    fn serialize_unit(self) -> Result<String, Infallible> {
        Ok("null".to_string())
    }

    fn serialize_none(self) -> Result<String, Infallible> {
        Ok("null".to_string())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<String, Infallible> {
        value.serialize(self)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeq, Infallible> {
        Ok(JsonSeq {
            indent: self.indent,
            items: Vec::new(),
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<JsonMap, Infallible> {
        Ok(JsonMap {
            indent: self.indent,
            entries: Vec::new(),
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<JsonMap, Infallible> {
        Ok(JsonMap {
            indent: self.indent,
            entries: Vec::new(),
        })
    }
}

impl SerializeSeq for JsonSeq {
    type Ok = String;
    type Error = Infallible;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Infallible> {
        let fragment = match value.serialize(Json {
            indent: self.indent + 1,
        }) {
            Ok(fragment) => fragment,
            Err(e) => match e {},
        };
        self.items.push(fragment);
        Ok(())
    }

    fn end(self) -> Result<String, Infallible> {
        Ok(join(self.indent, '[', ']', &self.items))
    }
}

impl JsonMap {
    fn push_entry(&mut self, key: String, value: &impl Serialize) {
        let fragment = match value.serialize(Json {
            indent: self.indent + 1,
        }) {
            Ok(fragment) => fragment,
            Err(e) => match e {},
        };
        self.entries.push(format!("{key}: {fragment}"));
    }
}

impl SerializeMap for JsonMap {
    type Ok = String;
    type Error = Infallible;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Infallible> {
        let key = match key.serialize(Json { indent: 0 }) {
            Ok(fragment) => fragment,
            Err(e) => match e {},
        };
        // JSON object keys must be strings; quote non-string keys wholesale.
        let key = if key.starts_with('"') {
            key
        } else {
            quote(&key)
        };
        self.push_entry(key, &value);
        Ok(())
    }

    fn end(self) -> Result<String, Infallible> {
        Ok(join(self.indent, '{', '}', &self.entries))
    }
}

impl SerializeStruct for JsonMap {
    type Ok = String;
    type Error = Infallible;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Infallible> {
        self.push_entry(quote(key), &value);
        Ok(())
    }

    fn end(self) -> Result<String, Infallible> {
        Ok(join(self.indent, '{', '}', &self.entries))
    }
}

/// A parsed JSON value. Numbers keep their source lexeme so a parse →
/// re-serialize round trip of this writer's own output is exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its source lexeme.
    Number(String),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(lexeme) => {
                // The integer paths must reproduce the lexeme exactly or
                // defer to the float path: `-0` parses as i64 0, which
                // would re-serialize as `0` and break the byte-exact round
                // trip of this writer's own `-0.0` output (`f64` keeps the
                // sign: `"-0"` → -0.0 → `"-0"`).
                if let Ok(v) = lexeme.parse::<u64>() {
                    serializer.serialize_u64(v)
                } else if let Some(v) = lexeme
                    .parse::<i64>()
                    .ok()
                    .filter(|v| v.to_string() == *lexeme)
                {
                    serializer.serialize_i64(v)
                } else {
                    serializer.serialize_f64(lexeme.parse::<f64>().unwrap_or(f64::NAN))
                }
            }
            Value::Str(s) => serializer.serialize_str(s),
            Value::Array(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Object(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    map.serialize_entry(k.as_str(), v)?;
                }
                map.end()
            }
        }
    }
}

/// A JSON parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

/// Parses a JSON document into a [`Value`].
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn literal(&mut self, text: &str, message: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null", "expected null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.literal("true", "expected true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false", "expected false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected {")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after object key")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected , or } in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("non-ASCII \\u escape"))?;
        let v = u16::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest escape-free, quote-free run in one slice.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                self.literal("\\u", "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("bad low surrogate"));
                                }
                                let code = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad surrogate pair"))?
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.error("bad \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.error("unterminated string")),
                Some(_) => unreachable!("loop above stops only at quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let lexeme =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number lexemes are ASCII");
        if lexeme.is_empty() || lexeme == "-" || lexeme.parse::<f64>().is_err() {
            return Err(self.error("bad number"));
        }
        Ok(Value::Number(lexeme.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escapes() {
        assert_eq!(to_string_pretty(&true), "true\n");
        assert_eq!(to_string_pretty(&42u64), "42\n");
        assert_eq!(to_string_pretty(&-7i32), "-7\n");
        assert_eq!(to_string_pretty(&1.5f64), "1.5\n");
        assert_eq!(to_string_pretty(&f64::NAN), "null\n");
        assert_eq!(to_string_pretty("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(to_string_pretty(&Option::<u64>::None), "null\n");
        assert_eq!(to_string_pretty(&Some(3u64)), "3\n");
    }

    #[test]
    fn short_compounds_inline_long_ones_break() {
        assert_eq!(to_string_pretty(&vec![1u64, 2, 3]), "[1, 2, 3]\n");
        let long: Vec<u64> = (0..40).collect();
        let text = to_string_pretty(&long);
        assert!(text.starts_with("[\n  0,\n  1,\n"));
        assert!(text.ends_with("\n  39\n]\n"));
        assert_eq!(to_string_pretty(&Vec::<u64>::new()), "[]\n");
    }

    #[test]
    fn nested_indentation() {
        let nested = vec![(0..40).collect::<Vec<u64>>()];
        let text = to_string_pretty(&nested);
        assert!(text.starts_with("[\n  [\n    0,\n"));
        assert!(text.ends_with("    39\n  ]\n]\n"));
    }

    #[test]
    fn parse_round_trip() {
        let doc =
            "{\n  \"name\": \"x\\n\",\n  \"vals\": [1, -2.5, 1e3, null, true],\n  \"sub\": {}\n}\n";
        let value = parse(doc).expect("parses");
        assert_eq!(value.get("name"), Some(&Value::Str("x\n".to_string())));
        // Printing canonicalizes lexemes like `1e3`; after one print the
        // parse → print cycle is a fixed point.
        let reprinted = to_string_pretty(&value);
        let reparsed = parse(&reprinted).expect("round trip parses");
        assert_eq!(to_string_pretty(&reparsed), reprinted);
    }

    #[test]
    fn writer_output_reparses_exactly() {
        let value = parse("[{\"a\": 1.25, \"b\": [true, false]}, \"s\"]").expect("parses");
        let printed = to_string_pretty(&value);
        assert_eq!(to_string_pretty(&parse(&printed).expect("parses")), printed);
    }

    #[test]
    fn surrogate_pairs_and_controls() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\\u0007\""),
            Ok(Value::Str("\u{1F600}\u{7}".to_string()))
        );
        assert_eq!(to_string_pretty("\u{7}"), "\"\\u0007\"\n");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }
}
