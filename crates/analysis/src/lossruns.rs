//! Temporal structure of packet *loss*: run lengths over the recovered
//! sequence numbers.
//!
//! The paper reports only loss *rates*, but the structure of loss matters as
//! much as its amount: a transport protocol sees isolated single-packet
//! losses (the attenuation regime's AGC misses, the host floor) very
//! differently from multi-packet outages (a phone burst swallowing
//! consecutive packets, a jammer's on-period). This module reconstructs the
//! loss process from the sequence numbers the matcher recovered:
//!
//! * gaps between consecutive recovered sequence numbers are loss runs;
//! * [`LossRunReport`] summarizes run counts/lengths and a two-state
//!   burstiness verdict (how far from independent Bernoulli losses the
//!   process is).

use crate::classify::TraceAnalysis;

/// Loss-run statistics of one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct LossRunReport {
    /// Packets transmitted (denominator).
    pub transmitted: u64,
    /// Sequence numbers recovered (distinct, in order).
    pub received: usize,
    /// Total lost packets inferred from sequence gaps.
    pub lost: u64,
    /// Loss runs (consecutive missing sequence numbers).
    pub runs: usize,
    /// Mean run length (lost packets per run).
    pub mean_run_len: f64,
    /// Longest run.
    pub max_run_len: u64,
}

impl LossRunReport {
    /// Loss rate implied by the gaps.
    pub fn loss_rate(&self) -> f64 {
        if self.transmitted == 0 {
            return 0.0;
        }
        self.lost as f64 / self.transmitted as f64
    }

    /// Burstiness factor: mean run length relative to the expectation for
    /// independent losses at the same rate (`1 / (1 − p)`). ≈1 means the
    /// loss process is memoryless; ≫1 means outages.
    pub fn burstiness(&self) -> f64 {
        if self.runs == 0 {
            return 1.0;
        }
        let p = self.loss_rate();
        let iid_mean_run = 1.0 / (1.0 - p.min(0.999));
        self.mean_run_len / iid_mean_run
    }
}

/// Builds the loss-run report from an analyzed trace. Only test packets with
/// recovered sequence numbers participate; duplicates are ignored; the
/// stream is assumed to start at the first recovered sequence number (losses
/// before it are not observable) and end at `transmitted − 1`.
pub fn loss_runs(analysis: &TraceAnalysis) -> LossRunReport {
    let mut seqs: Vec<u32> = analysis.test_packets().filter_map(|p| p.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();

    let mut lost = 0u64;
    let mut runs = 0usize;
    let mut max_run = 0u64;
    for w in seqs.windows(2) {
        let gap = u64::from(w[1]) - u64::from(w[0]);
        if gap > 1 {
            let run = gap - 1;
            lost += run;
            runs += 1;
            max_run = max_run.max(run);
        }
    }
    // Tail losses: transmitted sequence numbers beyond the last received.
    if let Some(&last) = seqs.last() {
        let expected_last = analysis.transmitted.saturating_sub(1);
        if expected_last > u64::from(last) {
            let run = expected_last - u64::from(last);
            lost += run;
            runs += 1;
            max_run = max_run.max(run);
        }
    }

    LossRunReport {
        transmitted: analysis.transmitted,
        received: seqs.len(),
        lost,
        runs,
        mean_run_len: if runs == 0 {
            0.0
        } else {
            lost as f64 / runs as f64
        },
        max_run_len: max_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{AnalyzedPacket, PacketClass};

    fn analysis_with_seqs(seqs: &[u32], transmitted: u64) -> TraceAnalysis {
        TraceAnalysis {
            packets: seqs
                .iter()
                .map(|&s| AnalyzedPacket {
                    index: s as usize,
                    is_test: true,
                    class: PacketClass::Undamaged,
                    seq: Some(s),
                    body_bit_errors: 0,
                    body_bits_received: 8192,
                    level: 29,
                    silence: 3,
                    quality: 15,
                })
                .collect(),
            transmitted,
        }
    }

    #[test]
    fn no_loss_no_runs() {
        let a = analysis_with_seqs(&[0, 1, 2, 3, 4], 5);
        let r = loss_runs(&a);
        assert_eq!(r.lost, 0);
        assert_eq!(r.runs, 0);
        assert_eq!(r.loss_rate(), 0.0);
        assert_eq!(r.burstiness(), 1.0);
    }

    #[test]
    fn isolated_singles() {
        // 0 _ 2 _ 4 5 6 _ 8 9 (transmitted 10): three singleton runs.
        let a = analysis_with_seqs(&[0, 2, 4, 5, 6, 8, 9], 10);
        let r = loss_runs(&a);
        assert_eq!(r.lost, 3);
        assert_eq!(r.runs, 3);
        assert_eq!(r.mean_run_len, 1.0);
        assert_eq!(r.max_run_len, 1);
        // p = 0.3 → iid mean run ≈ 1.43; measured 1.0 → burstiness < 1.
        assert!(r.burstiness() < 1.0);
    }

    #[test]
    fn one_outage() {
        // 0 1 2 [3..=12 lost] 13 14 (transmitted 15).
        let a = analysis_with_seqs(&[0, 1, 2, 13, 14], 15);
        let r = loss_runs(&a);
        assert_eq!(r.lost, 10);
        assert_eq!(r.runs, 1);
        assert_eq!(r.max_run_len, 10);
        assert!(r.burstiness() > 3.0, "{}", r.burstiness());
    }

    #[test]
    fn tail_loss_counts_as_a_run() {
        let a = analysis_with_seqs(&[0, 1, 2], 10);
        let r = loss_runs(&a);
        assert_eq!(r.lost, 7);
        assert_eq!(r.runs, 1);
        assert_eq!(r.max_run_len, 7);
    }

    #[test]
    fn duplicates_are_ignored() {
        let a = analysis_with_seqs(&[0, 1, 1, 2, 2, 3], 4);
        let r = loss_runs(&a);
        assert_eq!(r.received, 4);
        assert_eq!(r.lost, 0);
    }
}
