//! Streaming signal statistics: the paper's `↓ μ (σ) ↑` columns.
//!
//! "When we present signal level, silence level, and signal quality, we give
//! the minimum observation, mean, standard deviation (in parentheses), and
//! maximum observation" (Section 4).

/// Streaming min / mean / population-σ / max accumulator over `u8` samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: u8,
    max: u8,
}

impl Default for SignalStats {
    fn default() -> Self {
        SignalStats {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: u8::MAX,
            max: 0,
        }
    }
}

impl SignalStats {
    /// An empty accumulator.
    pub fn new() -> SignalStats {
        SignalStats::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, value: u8) {
        self.count += 1;
        let v = f64::from(value);
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Minimum observation (the paper's `↓`); 0 when empty.
    pub fn min(&self) -> u8 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum observation (the paper's `↑`).
    pub fn max(&self) -> u8 {
        self.max
    }

    /// Mean (`μ`); 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Population standard deviation (`σ`); 0 when empty.
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean)
            .max(0.0)
            .sqrt()
    }

    /// Renders as the paper's `↓ μ (σ) ↑` cell, e.g. `"25 26.71 ( 0.66) 28"`.
    pub fn cell(&self) -> String {
        format!(
            "{:>2} {:>5.2} ({:>5.2}) {:>2}",
            self.min(),
            self.mean(),
            self.std_dev(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = SignalStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn matches_naive_computation() {
        let samples = [29u8, 30, 30, 31, 28, 30, 29, 32];
        let mut s = SignalStats::new();
        for &v in &samples {
            s.push(v);
        }
        let naive_mean = samples.iter().map(|&v| f64::from(v)).sum::<f64>() / 8.0;
        let naive_var = samples
            .iter()
            .map(|&v| (f64::from(v) - naive_mean).powi(2))
            .sum::<f64>()
            / 8.0;
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), 28);
        assert_eq!(s.max(), 32);
        assert!((s.mean() - naive_mean).abs() < 1e-12);
        assert!((s.std_dev() - naive_var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_input_has_zero_sigma() {
        let mut s = SignalStats::new();
        for _ in 0..1000 {
            s.push(15);
        }
        assert_eq!(s.mean(), 15.0);
        assert!(s.std_dev() < 1e-9);
        assert_eq!((s.min(), s.max()), (15, 15));
    }

    #[test]
    fn cell_formatting() {
        let mut s = SignalStats::new();
        for v in [25u8, 27, 28] {
            s.push(v);
        }
        let cell = s.cell();
        assert!(cell.starts_with("25"), "{cell}");
        assert!(cell.ends_with("28"), "{cell}");
        assert!(cell.contains("26.67"), "{cell}");
    }
}
