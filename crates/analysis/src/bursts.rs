//! Error-burst structure of measured syndromes.
//!
//! The paper's FEC discussion (Sections 8, 9.4) hinges on *what the errors
//! look like*, not just how many there are: Viterbi-decoded convolutional
//! codes handle scattered errors and hate bursts, so the right interleaver
//! depth — and whether FEC is worth it at all — follows from burst
//! statistics. This module extracts them from analyzed traces:
//!
//! * per-packet syndromes are concatenated into a bit-error indicator
//!   sequence (damaged, non-truncated test packets only — the only packets
//!   whose syndromes the methodology can trust, per Section 4);
//! * [`BurstReport`] gives burst count/length/gap statistics and a fitted
//!   Gilbert–Elliott channel;
//! * [`BurstReport::recommended_interleaver_rows`] turns that into an
//!   interleaver depth (a row count comfortably above the observed bursts).

use crate::classify::{PacketClass, TraceAnalysis};
use wavelan_net::testpkt::TEST_BODY_BITS;
use wavelan_phy::gilbert::GilbertElliott;
use wavelan_sim::Trace;

/// Burst statistics of a trace's body-error syndromes.
#[derive(Debug, Clone)]
pub struct BurstReport {
    /// Total body bits examined.
    pub bits: u64,
    /// Total corrupted bits.
    pub errors: u64,
    /// Number of bursts (errors within `burst_gap` bits merge).
    pub bursts: usize,
    /// Mean burst length, bits (first to last error of the burst).
    pub mean_burst_len: f64,
    /// Longest burst, bits.
    pub max_burst_len: usize,
    /// Mean errors per burst.
    pub errors_per_burst: f64,
    /// The fitted two-state channel, when fittable.
    pub fitted: Option<GilbertElliott>,
}

impl BurstReport {
    /// Overall bit error rate of the examined bits.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            return 0.0;
        }
        self.errors as f64 / self.bits as f64
    }

    /// An interleaver row count that disperses the observed bursts: twice
    /// the maximum burst length (so even the worst burst lands ≤1 error per
    /// deinterleaved constraint span), floored at 8 rows.
    pub fn recommended_interleaver_rows(&self) -> usize {
        (self.max_burst_len * 2).max(8)
    }
}

/// Extracts the per-packet error syndrome of a damaged test packet by
/// re-deriving the majority word and XOR-ing (same procedure the classifier
/// uses, exposed here per-bit).
fn packet_syndrome(bytes: &[u8]) -> Vec<bool> {
    let words = crate::matcher::body_words(bytes);
    let Some((majority, _)) = crate::matcher::majority_word(&words) else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(words.len() * 32);
    for w in &words {
        let diff = w ^ majority;
        for bit in (0..32).rev() {
            out.push((diff >> bit) & 1 == 1);
        }
    }
    out
}

/// Builds the burst report for a trace + its analysis. `burst_gap` is the
/// merge distance in bits (errors closer than this are one burst; 64 — four
/// constraint spans — is a reasonable default).
pub fn burst_report(trace: &Trace, analysis: &TraceAnalysis, burst_gap: usize) -> BurstReport {
    // Concatenate syndromes of damaged, full-length test packets. Undamaged
    // full packets contribute clean stretches (they are part of the channel's
    // good time), keeping the fitted good-state honest.
    let mut sequence: Vec<bool> = Vec::new();
    for p in analysis.packets.iter().filter(|p| p.is_test) {
        match p.class {
            PacketClass::BodyDamaged => {
                sequence.extend(packet_syndrome(&trace.records[p.index].bytes));
            }
            PacketClass::Undamaged => {
                sequence.extend(std::iter::repeat_n(false, TEST_BODY_BITS as usize));
            }
            _ => {}
        }
    }

    let positions: Vec<usize> = sequence
        .iter()
        .enumerate()
        .filter(|(_, &e)| e)
        .map(|(i, _)| i)
        .collect();
    let mut bursts: Vec<(usize, usize)> = Vec::new();
    if !positions.is_empty() {
        let mut start = positions[0];
        let mut prev = positions[0];
        for &p in &positions[1..] {
            if p - prev > burst_gap {
                bursts.push((start, prev));
                start = p;
            }
            prev = p;
        }
        bursts.push((start, prev));
    }
    let lengths: Vec<usize> = bursts.iter().map(|&(s, e)| e - s + 1).collect();
    let mean_burst_len = if lengths.is_empty() {
        0.0
    } else {
        lengths.iter().sum::<usize>() as f64 / lengths.len() as f64
    };

    BurstReport {
        bits: sequence.len() as u64,
        errors: positions.len() as u64,
        bursts: bursts.len(),
        mean_burst_len,
        max_burst_len: lengths.iter().copied().max().unwrap_or(0),
        errors_per_burst: if bursts.is_empty() {
            0.0
        } else {
            positions.len() as f64 / bursts.len() as f64
        },
        fitted: GilbertElliott::fit(&sequence, burst_gap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::ExpectedSeries;
    use wavelan_mac::network_id::{wrap_with_network_id, NetworkId};
    use wavelan_net::testpkt::{Endpoint, TestPacket};
    use wavelan_sim::TraceRecord;

    fn series() -> ExpectedSeries {
        ExpectedSeries {
            src: Endpoint::station(2),
            dst: Endpoint::station(1),
            network_id: NetworkId::TESTBED,
        }
    }

    fn record(bytes: Vec<u8>) -> TraceRecord {
        TraceRecord {
            time_ns: 0,
            bytes,
            wire_len: crate::matcher::full_wire_len() as u32,
            level: 29,
            silence: 3,
            quality: 15,
            antenna: 0,
            truth: None,
        }
    }

    fn wire_with_burst(seq: u32, burst_start_bit: usize, burst_len: usize) -> Vec<u8> {
        let e = series();
        let mut wire =
            wrap_with_network_id(e.network_id, &TestPacket { seq }.build_frame(e.src, e.dst));
        let body = wavelan_mac::network_id::NETWORK_ID_LEN + TestPacket::body_offset();
        for b in burst_start_bit..burst_start_bit + burst_len {
            let byte = body + b / 8;
            wire[byte] ^= 0x80 >> (b % 8);
        }
        wire
    }

    #[test]
    fn single_burst_is_characterized() {
        let mut trace = Trace {
            packets_transmitted: 2,
            ..Trace::default()
        };
        trace.push(record(wire_with_burst(0, 1000, 24)));
        trace.push(record(wire_with_burst(1, 0, 0))); // clean
        let analysis = crate::classify::classify_trace(&trace, &series());
        let report = burst_report(&trace, &analysis, 64);
        assert_eq!(report.errors, 24);
        assert_eq!(report.bursts, 1);
        assert_eq!(report.max_burst_len, 24);
        assert!((report.errors_per_burst - 24.0).abs() < 1e-9);
        assert_eq!(report.bits, 2 * 8192);
        assert_eq!(report.recommended_interleaver_rows(), 48);
    }

    #[test]
    fn separate_bursts_are_split_by_gap() {
        let mut trace = Trace::default();
        let mut wire = wire_with_burst(0, 100, 8);
        // second burst 2000 bits later in the same packet
        let body = wavelan_mac::network_id::NETWORK_ID_LEN + TestPacket::body_offset();
        for b in 2100..2108 {
            wire[body + b / 8] ^= 0x80 >> (b % 8);
        }
        trace.push(record(wire));
        let analysis = crate::classify::classify_trace(&trace, &series());
        let report = burst_report(&trace, &analysis, 64);
        assert_eq!(report.bursts, 2);
        assert_eq!(report.errors, 16);
    }

    #[test]
    fn clean_trace_reports_zero() {
        let mut trace = Trace::default();
        trace.push(record(wire_with_burst(0, 0, 0)));
        let analysis = crate::classify::classify_trace(&trace, &series());
        let report = burst_report(&trace, &analysis, 64);
        assert_eq!(report.errors, 0);
        assert_eq!(report.bursts, 0);
        assert_eq!(report.ber(), 0.0);
        assert!(report.fitted.is_none());
        assert_eq!(report.recommended_interleaver_rows(), 8);
    }

    #[test]
    fn fitted_channel_reflects_burstiness() {
        // Many packets, each with one 16-bit burst: the fitted bad-state BER
        // must be far above the overall BER.
        let mut trace = Trace::default();
        for i in 0..24u32 {
            trace.push(record(wire_with_burst(
                i,
                500 + (i as usize * 97) % 6000,
                16,
            )));
        }
        let analysis = crate::classify::classify_trace(&trace, &series());
        let report = burst_report(&trace, &analysis, 64);
        let fitted = report.fitted.expect("fittable");
        assert!(
            fitted.ber_bad > report.ber() * 50.0,
            "{fitted:?} vs {}",
            report.ber()
        );
        assert!(fitted.mean_bad_sojourn() < 64.0);
    }
}
