//! The heuristic test-packet matcher.
//!
//! Decides whether a logged packet belongs to the test series without
//! trusting any single field — every byte may be corrupted. Evidence is
//! scored:
//!
//! * destination / source station addresses within a small Hamming distance
//!   of the expected ones (damaged addresses still match),
//! * the repeated-word body structure (the strongest signal: 256 copies of
//!   one 32-bit word survive heavy corruption),
//! * frame length equal to the fixed test-packet length,
//! * UDP ports, ethertype, and network ID as weak corroboration.
//!
//! A packet "corrupted beyond recognition" scores low and is reported as an
//! outsider — the paper accepts the same ambiguity ("some packets we identify
//! as outsiders may instead be badly corrupted test packets").

use wavelan_mac::network_id::{strip_network_id, NetworkId, NETWORK_ID_LEN};
use wavelan_net::testpkt::{Endpoint, TestPacket, TEST_PORT};
use wavelan_net::{MacAddr, ETHERNET_HEADER_LEN, IPV4_HEADER_LEN, UDP_HEADER_LEN};

/// What the analyzer knows about the test series (the experimenter's
/// knowledge, not an oracle): who was sending to whom, on which network ID.
#[derive(Debug, Clone, Copy)]
pub struct ExpectedSeries {
    /// The sending station.
    pub src: Endpoint,
    /// The receiving station.
    pub dst: Endpoint,
    /// The testbed's network ID.
    pub network_id: NetworkId,
}

/// Maximum Hamming distance at which a damaged address still "matches".
const ADDR_MATCH_BITS: u32 = 8;

/// Minimum score to accept a packet as part of the test series.
///
/// Set so that *format* evidence alone (ethertype + ports + length + body
/// structure + network ID ≈ 9 points) cannot match a packet: at least one
/// station address must corroborate. Another WaveLAN deployment sending
/// same-format traffic therefore lands in "outsiders", while our own
/// packets match even with both addresses lightly damaged.
const MATCH_THRESHOLD: i32 = 10;

/// Fraction of body words that must agree for the majority word to count as
/// "recovered".
const MAJORITY_FRACTION: f64 = 0.6;

/// Evidence extracted from one logged packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchEvidence {
    /// Total score against the acceptance threshold (see module docs).
    pub score: i32,
    /// Majority body word, if the body structure was recognizable.
    pub majority_word: Option<u32>,
    /// How many body words were available (full packet: 256).
    pub body_words: usize,
    /// How many of them equal the majority word.
    pub agreeing_words: usize,
}

impl MatchEvidence {
    /// Whether the packet is accepted as a test packet.
    pub fn is_test_packet(&self) -> bool {
        self.score >= MATCH_THRESHOLD
    }
}

/// Byte offset of the Ethernet frame within the on-air bytes.
const ETH_OFF: usize = NETWORK_ID_LEN;
/// Byte offset of the body within the on-air bytes.
fn body_offset() -> usize {
    NETWORK_ID_LEN + TestPacket::body_offset()
}
/// Full on-air length of a test packet.
pub fn full_wire_len() -> usize {
    NETWORK_ID_LEN + TestPacket::frame_len()
}

/// Extracts the (available) 32-bit body words from the on-air bytes.
pub fn body_words(bytes: &[u8]) -> Vec<u32> {
    let mut words = Vec::new();
    body_words_into(bytes, full_wire_len(), &mut words);
    words
}

/// [`body_words`] into a caller-owned buffer (cleared first), against the
/// packet's *intended* on-air length: a complete delivery's trailing FCS is
/// excluded; a truncated one keeps everything after the headers. Callers
/// without per-record wire-length information pass [`full_wire_len`].
pub fn body_words_into(bytes: &[u8], wire_len: usize, out: &mut Vec<u32>) {
    out.clear();
    let start = body_offset();
    // The last 4 on-air bytes of a *complete* packet are the FCS, not body;
    // for truncated packets everything after `start` is (partial) body.
    let end = if bytes.len() >= wire_len {
        wire_len.saturating_sub(wavelan_net::ETHERNET_TRAILER_LEN)
    } else {
        bytes.len()
    };
    if end <= start {
        return;
    }
    out.extend(
        bytes[start..end]
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]])),
    );
}

/// Majority vote over body words: `(word, count)` of the most frequent word.
pub fn majority_word(words: &[u32]) -> Option<(u32, usize)> {
    if words.is_empty() {
        return None;
    }
    // Boyer–Moore majority candidate, then verify with a count. The common
    // case (few corrupted words) is a true majority; pathological ties fall
    // back to "whichever candidate survived", which the fraction check below
    // will reject anyway.
    let mut candidate = words[0];
    let mut votes = 0i64;
    for &w in words {
        if votes == 0 {
            candidate = w;
            votes = 1;
        } else if w == candidate {
            votes += 1;
        } else {
            votes -= 1;
        }
    }
    let count = words.iter().filter(|&&w| w == candidate).count();
    Some((candidate, count))
}

/// Scores one logged packet against the expected series.
pub fn evaluate(bytes: &[u8], expected: &ExpectedSeries) -> MatchEvidence {
    let mut words = Vec::new();
    evaluate_in(bytes, full_wire_len(), expected, &mut words)
}

/// [`evaluate`] with the packet's intended on-air length and a caller-owned
/// word buffer — the allocation-free form the streaming classifier uses. On
/// return `words` holds the packet's body words (what
/// [`body_words_into`] produced), so callers can reuse them for the body
/// syndrome without re-extracting.
pub fn evaluate_in(
    bytes: &[u8],
    wire_len: usize,
    expected: &ExpectedSeries,
    words: &mut Vec<u32>,
) -> MatchEvidence {
    let mut score = 0;

    // Network ID (weak: only 16 bits, and foreign WaveLANs may share it).
    if let Some((id, _)) = strip_network_id(bytes) {
        if id == expected.network_id {
            score += 1;
        }
    }

    // Station addresses (strong: 48 bits each, tolerant of bit damage).
    if bytes.len() >= ETH_OFF + 12 {
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&bytes[ETH_OFF..ETH_OFF + 6]);
        src.copy_from_slice(&bytes[ETH_OFF + 6..ETH_OFF + 12]);
        if MacAddr(dst).bit_distance(&expected.dst.mac) <= ADDR_MATCH_BITS {
            score += 3;
        }
        if MacAddr(src).bit_distance(&expected.src.mac) <= ADDR_MATCH_BITS {
            score += 3;
        }
    }

    // Ethertype.
    if bytes.len() >= ETH_OFF + ETHERNET_HEADER_LEN {
        let et = u16::from_be_bytes([bytes[ETH_OFF + 12], bytes[ETH_OFF + 13]]);
        if et == 0x0800 {
            score += 1;
        }
    }

    // UDP ports.
    let udp_off = ETH_OFF + ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
    if bytes.len() >= udp_off + UDP_HEADER_LEN {
        let sport = u16::from_be_bytes([bytes[udp_off], bytes[udp_off + 1]]);
        let dport = u16::from_be_bytes([bytes[udp_off + 2], bytes[udp_off + 3]]);
        if sport == TEST_PORT {
            score += 1;
        }
        if dport == TEST_PORT {
            score += 1;
        }
    }

    // Exact test-packet length. Deliberately the *known* test-packet length,
    // not `wire_len`: the modem framing announces every frame's length, so
    // "matches its own announced length" would be evidence of nothing.
    if bytes.len() == full_wire_len() {
        score += 2;
    }

    // The repeated-word body.
    body_words_into(bytes, wire_len, words);
    let maj = majority_word(words);
    let (majority, agreeing) = match maj {
        Some((w, c)) => (Some(w), c),
        None => (None, 0),
    };
    let structured = !words.is_empty()
        && agreeing as f64 / words.len() as f64 >= MAJORITY_FRACTION
        && words.len() >= 8;
    if structured {
        score += 3;
    }

    MatchEvidence {
        score,
        majority_word: if structured { majority } else { None },
        body_words: words.len(),
        agreeing_words: agreeing,
    }
}

/// Recovers the sequence number of an accepted test packet.
///
/// Primary evidence is the majority body word (the word *is* the sequence
/// number). When the body is too short or too damaged, falls back to the IP
/// identification field — but only if the IP header checksum verifies, since
/// a damaged ident would otherwise masquerade as a sequence number.
pub fn recover_sequence(bytes: &[u8], evidence: &MatchEvidence) -> Option<u32> {
    if let Some(w) = evidence.majority_word {
        return Some(w);
    }
    // Fallback: IP ident (low 16 bits of seq) behind a verified checksum.
    let ip_off = ETH_OFF + ETHERNET_HEADER_LEN;
    if bytes.len() >= ip_off + IPV4_HEADER_LEN {
        if let Ok((hdr, _)) = wavelan_net::Ipv4Header::parse(&bytes[ip_off..]) {
            if hdr.checksum_ok {
                return Some(u32::from(hdr.ident));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavelan_mac::network_id::wrap_with_network_id;

    fn series() -> ExpectedSeries {
        ExpectedSeries {
            src: Endpoint::station(2),
            dst: Endpoint::station(1),
            network_id: NetworkId::TESTBED,
        }
    }

    fn clean_wire(seq: u32) -> Vec<u8> {
        let e = series();
        wrap_with_network_id(e.network_id, &TestPacket { seq }.build_frame(e.src, e.dst))
    }

    #[test]
    fn clean_packet_matches_with_high_score() {
        let wire = clean_wire(1234);
        let ev = evaluate(&wire, &series());
        assert!(ev.is_test_packet(), "{ev:?}");
        assert_eq!(ev.majority_word, Some(1234));
        assert_eq!(ev.body_words, 256);
        assert_eq!(ev.agreeing_words, 256);
        assert_eq!(recover_sequence(&wire, &ev), Some(1234));
    }

    #[test]
    fn heavily_corrupted_body_still_matches_by_majority() {
        let mut wire = clean_wire(77);
        // Corrupt 80 of the 256 body words (31%).
        let body = body_offset();
        for i in 0..80 {
            wire[body + i * 4 + 2] ^= 0xA5;
        }
        let ev = evaluate(&wire, &series());
        assert!(ev.is_test_packet());
        assert_eq!(ev.majority_word, Some(77));
        assert_eq!(ev.agreeing_words, 176);
    }

    #[test]
    fn corrupted_addresses_still_match() {
        let mut wire = clean_wire(5);
        wire[2] ^= 0x0F; // 4 bits of dst
        wire[9] ^= 0x03; // 2 bits of src
        let ev = evaluate(&wire, &series());
        assert!(ev.is_test_packet());
    }

    #[test]
    fn foreign_packet_is_rejected() {
        // An ARP-ish packet from an unrelated station.
        let eth = wavelan_net::EthernetFrame::build(
            MacAddr::BROADCAST,
            MacAddr([0x00, 0xA0, 0x24, 0x12, 0x34, 0x56]), // a "real" OUI
            wavelan_net::EtherType::Arp,
            &[0u8; 46],
        );
        let wire = wrap_with_network_id(NetworkId(0x0042), &eth);
        let ev = evaluate(&wire, &series());
        assert!(!ev.is_test_packet(), "{ev:?}");
    }

    #[test]
    fn truncated_test_packet_matches_via_headers_and_partial_body() {
        let wire = clean_wire(9);
        let cut = &wire[..body_offset() + 100]; // 25 body words survive
        let ev = evaluate(cut, &series());
        assert!(ev.is_test_packet(), "{ev:?}");
        assert_eq!(ev.majority_word, Some(9));
        assert_eq!(recover_sequence(cut, &ev), Some(9));
    }

    #[test]
    fn very_short_fragment_falls_back_to_ip_ident() {
        let wire = clean_wire(41);
        // Keep only through the UDP header: no body words at all.
        let cut = &wire[..ETH_OFF + ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN];
        let ev = evaluate(cut, &series());
        assert!(ev.is_test_packet(), "{ev:?}");
        assert_eq!(ev.majority_word, None);
        assert_eq!(recover_sequence(cut, &ev), Some(41));
    }

    #[test]
    fn jam_shredded_packet_is_an_outsider() {
        // Everything except the first 10 bytes corrupted beyond recognition:
        // the paper's "corrupted beyond recognition" case.
        let mut wire = clean_wire(3);
        for (i, b) in wire.iter_mut().enumerate().skip(4) {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let ev = evaluate(&wire, &series());
        assert!(!ev.is_test_packet(), "{ev:?}");
    }

    #[test]
    fn majority_word_boyer_moore() {
        assert_eq!(majority_word(&[]), None);
        assert_eq!(majority_word(&[5]), Some((5, 1)));
        assert_eq!(majority_word(&[1, 2, 2, 2, 3]), Some((2, 3)));
        let mixed = [7u32, 7, 8, 7, 9, 7, 7];
        assert_eq!(majority_word(&mixed), Some((7, 5)));
    }
}
