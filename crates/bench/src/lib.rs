//! # wavelan-bench
//!
//! The reproduction harness: the `repro` binary regenerates every table and
//! figure of the paper (`cargo run -p wavelan-bench --bin repro --release`),
//! and the Criterion benches (`cargo bench`) measure the substrates and run
//! the ablations called out in DESIGN.md.

/// Names of all reproducible artifacts: the paper's tables and figures in
/// paper order, then the extension experiments.
pub const ARTIFACTS: [&str; 18] = [
    "table2",
    "figure1",
    "table3",
    "figure2",
    "figure3",
    "table4",
    "table5-7",
    "table8-9",
    "table10",
    "table11-13",
    "table14",
    "fec",
    "harq",
    "related-work",
    "tdma",
    "quality-threshold",
    "roaming",
    "hidden-terminal",
];
