//! # wavelan-bench
//!
//! The reproduction harness: the `repro` binary regenerates every table and
//! figure of the paper (`cargo run -p wavelan-bench --bin repro --release`),
//! and the Criterion benches (`cargo bench`) measure the substrates and run
//! the ablations called out in DESIGN.md.
//!
//! The artifact dispatch lives here (not in the binary) so integration
//! tests can run artifacts in-process: the golden-output regression test
//! renders `--scale smoke` through [`run_artifact`] and diffs against a
//! committed transcript, and the determinism test replays artifacts at
//! different worker counts.

use wavelan_core::experiments::{
    adaptive_fec, body, competing, harq, hidden_terminal, in_room, multiroom, narrowband,
    path_loss, quality_threshold, related_work, signal_vs_error, ss_phone, tdma, threshold, walls,
};
use wavelan_core::{Executor, Scale};

/// Names of all reproducible artifacts: the paper's tables and figures in
/// paper order, then the extension experiments.
pub const ARTIFACTS: [&str; 18] = [
    "table2",
    "figure1",
    "table3",
    "figure2",
    "figure3",
    "table4",
    "table5-7",
    "table8-9",
    "table10",
    "table11-13",
    "table14",
    "fec",
    "harq",
    "related-work",
    "tdma",
    "quality-threshold",
    "roaming",
    "hidden-terminal",
];

/// One artifact's rendered output plus its simulated volume.
#[derive(Debug, Clone)]
pub struct ArtifactRun {
    /// The rendered table/figure text, exactly as `repro` prints it.
    pub text: String,
    /// Test packets the artifact asked its trials to transmit — the
    /// numerator of the packets/sec throughput report. Deterministic (it
    /// counts requested transmissions, not stochastic deliveries).
    pub packets: u64,
}

/// Runs one artifact by name on the given executor. Returns `None` for an
/// unknown artifact name.
pub fn run_artifact(name: &str, scale: Scale, seed: u64, exec: &Executor) -> Option<ArtifactRun> {
    let run = match name {
        "table2" => ArtifactRun {
            text: in_room::run_with(scale, seed, exec).render(),
            packets: in_room::PAPER_TRIALS
                .iter()
                .map(|&(_, p)| scale.packets(p))
                .sum(),
        },
        "figure1" => {
            let per_point = scale.packets(1_440);
            ArtifactRun {
                text: path_loss::run_with(&[], per_point, seed, exec).render(),
                packets: 31 * per_point,
            }
        }
        "table3" => ArtifactRun {
            text: signal_vs_error::run_with(scale, seed, exec).render_table3(),
            packets: signal_vs_error_packets(scale),
        },
        "figure2" => ArtifactRun {
            text: signal_vs_error::run_with(scale, seed, exec).render_figure2(),
            packets: signal_vs_error_packets(scale),
        },
        "figure3" => {
            let per_point = scale.packets(1_440);
            ArtifactRun {
                text: threshold::run_with(&[], per_point, seed, exec).render(),
                packets: 13 * per_point,
            }
        }
        "table4" => ArtifactRun {
            text: walls::run_with(scale, seed, exec).render(),
            packets: 4 * scale.packets(walls::PAPER_PACKETS),
        },
        "table5-7" | "table5" | "table6" | "table7" => ArtifactRun {
            text: multiroom::run_with(scale, seed, exec).render(),
            packets: multiroom::PAPER_PACKETS
                .iter()
                .map(|&(_, p)| scale.packets(p))
                .sum(),
        },
        "table8-9" | "table8" | "table9" => ArtifactRun {
            text: body::run_with(scale, seed, exec).render(),
            packets: 2 * scale.packets(body::PAPER_PACKETS),
        },
        "table10" => ArtifactRun {
            text: narrowband::run_with(scale, seed, exec).render(),
            packets: 5 * scale.packets(narrowband::PAPER_PACKETS),
        },
        "table11-13" | "table11" | "table12" | "table13" => ArtifactRun {
            text: ss_phone::run_with(scale, seed, exec).render(),
            packets: 6 * scale.packets(ss_phone::PAPER_PACKETS),
        },
        "table14" => ArtifactRun {
            text: competing::run_with(scale, seed, exec).render(),
            packets: 2 * scale.packets(competing::PAPER_PACKETS)
                + scale.packets(competing::PAPER_PACKETS).min(500),
        },
        "fec" => ArtifactRun {
            text: adaptive_fec::run_with(scale, seed, exec).render(),
            packets: 6 * scale.packets(ss_phone::PAPER_PACKETS),
        },
        "harq" => ArtifactRun {
            text: harq::run_with(scale, seed, exec).render(),
            packets: 6 * scale.packets(ss_phone::PAPER_PACKETS),
        },
        "related-work" => {
            let per_point = scale.packets(1_440).min(800);
            ArtifactRun {
                text: related_work::run_with(per_point, seed, exec).render(),
                packets: 16 * per_point,
            }
        }
        "tdma" => ArtifactRun {
            text: tdma::run_with(8, 500, seed, exec).render(),
            // 8 load points × 500 frames × 16 slots, one packet slot each.
            packets: 8 * 500 * 16,
        },
        "quality-threshold" => ArtifactRun {
            text: quality_threshold::run_with(scale, seed, exec).render(),
            packets: 5 * scale.packets(1_440),
        },
        "hidden-terminal" => {
            let packets = scale.packets(1_440).min(1_000);
            ArtifactRun {
                text: hidden_terminal::run_with(packets, seed, exec).render(),
                packets: 2 * packets,
            }
        }
        "roaming" => ArtifactRun {
            text: wavelan_cell::roaming::walk(
                wavelan_cell::roaming::TwoCells {
                    separation_ft: 200.0,
                    threshold: 12,
                },
                20.0,
                180.0,
                17,
                2_000,
                seed,
            )
            .render(),
            packets: 17 * 2_000,
        },
        _ => return None,
    };
    Some(run)
}

fn signal_vs_error_packets(scale: Scale) -> u64 {
    signal_vs_error::POSITION_LADDER_FT.len() as u64
        * scale.packets(8_634 / signal_vs_error::POSITION_LADDER_FT.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_dispatch_resolves() {
        // One cheap artifact end-to-end (the experiments' own tests cover
        // their content); unknown names must report as such, not panic.
        let exec = Executor::serial();
        let run = run_artifact("tdma", Scale::Smoke, 7, &exec).expect("known artifact");
        assert!(!run.text.is_empty());
        assert!(run.packets > 0);
        assert!(run_artifact("no-such-artifact", Scale::Smoke, 7, &exec).is_none());
    }
}
