//! # wavelan-bench
//!
//! The reproduction harness: the `repro` binary regenerates every table and
//! figure of the paper (`cargo run -p wavelan-bench --bin repro --release`),
//! and the Criterion benches (`cargo bench`) measure the substrates and run
//! the ablations called out in DESIGN.md.
//!
//! Artifact dispatch is a thin veneer over the experiment registry in
//! `wavelan_core::registry`: [`ARTIFACTS`] mirrors the registry's canonical
//! name list and [`run_artifact`]/[`run_report`] resolve names through
//! [`wavelan_core::registry::find`]. Integration tests run artifacts
//! in-process through these entry points: the golden-output regression test
//! renders `--scale smoke` through [`run_artifact`] and diffs against a
//! committed transcript, and the determinism test replays artifacts at
//! different worker counts.

use wavelan_analysis::Report;
use wavelan_core::registry;
use wavelan_core::{Executor, Scale};

pub use wavelan_analysis::RunDocument;

/// Names of all reproducible artifacts: the paper's tables and figures in
/// paper order, then the extension experiments. Identical to
/// [`wavelan_core::registry::NAMES`].
pub const ARTIFACTS: [&str; 18] = registry::NAMES;

/// One artifact's rendered output plus its simulated volume.
#[derive(Debug, Clone)]
pub struct ArtifactRun {
    /// The rendered table/figure text, exactly as `repro` prints it.
    pub text: String,
    /// Test packets the artifact asked its trials to transmit — the
    /// numerator of the packets/sec throughput report. Deterministic (it
    /// counts requested transmissions, not stochastic deliveries).
    pub packets: u64,
}

/// Runs one artifact by name and returns its structured [`Report`].
/// Returns `None` for an unknown artifact name.
pub fn run_report(name: &str, scale: Scale, seed: u64, exec: &Executor) -> Option<Report> {
    registry::find(name).map(|e| e.run(scale, seed, exec))
}

/// Runs one artifact by name on the given executor. Returns `None` for an
/// unknown artifact name. Kept as the text-rendering convenience over
/// [`run_report`].
pub fn run_artifact(name: &str, scale: Scale, seed: u64, exec: &Executor) -> Option<ArtifactRun> {
    run_report(name, scale, seed, exec).map(|report| ArtifactRun {
        text: report.render(),
        packets: report.packets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_dispatch_resolves() {
        // One cheap artifact end-to-end (the experiments' own tests cover
        // their content); unknown names must report as such, not panic.
        let exec = Executor::serial();
        let run = run_artifact("tdma", Scale::Smoke, 7, &exec).expect("known artifact");
        assert!(!run.text.is_empty());
        assert!(run.packets > 0);
        assert!(run_artifact("no-such-artifact", Scale::Smoke, 7, &exec).is_none());
    }

    #[test]
    fn report_round_trips_through_json() {
        let exec = Executor::serial();
        let report = run_report("tdma", Scale::Smoke, 7, &exec).expect("known artifact");
        let doc = RunDocument {
            scale: Scale::Smoke.name(),
            seed: 7,
            artifacts: vec![report],
        };
        let json = wavelan_analysis::json::to_string_pretty(&doc);
        let value = wavelan_analysis::json::parse(&json).expect("valid JSON");
        assert_eq!(
            value.get("scale").and_then(|v| match v {
                wavelan_analysis::json::Value::Str(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("smoke")
        );
    }
}
