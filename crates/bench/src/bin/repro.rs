//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale smoke|reduced|paper] [--seed N] [--jobs N]
//!       [--format text|json] [--timing-json PATH] [--list] [artifact ...]
//! repro --validate [--seeds N] [--scale smoke|reduced|paper] [--seed N]
//!       [--jobs N] [--format text|json]
//! ```
//!
//! With no artifact arguments, everything is regenerated in paper order.
//! Run `repro --list` for the artifact names, the paper artifact each one
//! reproduces, and its packet budget at the selected scale.
//!
//! `--validate` runs the paper-fidelity harness (`wavelan-validate`)
//! instead of regenerating artifacts: every expectation for Tables 2–14
//! and Figures 1–3 is checked against `--seeds N` consecutive seeds
//! starting at `--seed` (default 3 seeds from 1996). Exit code 0 means no
//! table failed (warns allowed), 1 means at least one `fail` verdict,
//! 2 means a usage error.
//!
//! `--format json` emits the run as one JSON document (the serde-serialized
//! structured reports — see the "Report model" section of the README)
//! instead of the rendered text tables.
//!
//! `--jobs N` sets the trial executor's worker count (default: one worker
//! per core; `--jobs 1` is fully serial). Trial seeds derive purely from
//! `(experiment id, trial index, base seed)` and results merge in
//! declaration order, so stdout is bit-identical at any worker count —
//! only the wall-clock report on stderr changes.
//!
//! `--timing-json PATH` additionally writes the per-artifact wall-clock
//! numbers (the same data as the stderr lines) as a JSON document, for
//! machine consumption by CI perf tracking.
//!
//! `--check-json PATH` parses a JSON file with the vendored round-trip
//! parser and exits 0 if it is well-formed (2 otherwise) — the CI gate
//! uses it to validate the documents it just wrote without depending on
//! `jq`.

use serde::{Serialize, SerializeStruct, Serializer};
use std::time::Instant;
use wavelan_analysis::json::to_string_pretty;
use wavelan_bench::{run_report, RunDocument, ARTIFACTS};
use wavelan_core::{registry, Executor, Scale};

/// Output format of the run.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    /// The rendered text tables (the golden-transcript format).
    Text,
    /// One JSON document of serde-serialized [`wavelan_analysis::Report`]s.
    Json,
}

/// One timed artifact, for the `--timing-json` report.
struct Timing {
    artifact: String,
    seconds: f64,
    packets: u64,
}

impl Serialize for Timing {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Timing", 4)?;
        s.serialize_field("artifact", &self.artifact)?;
        s.serialize_field("seconds", &self.seconds)?;
        s.serialize_field("packets", &self.packets)?;
        s.serialize_field(
            "pkt_per_sec",
            &(self.packets as f64 / self.seconds.max(1e-9)),
        )?;
        s.end()
    }
}

/// The whole `--timing-json` document.
struct TimingDoc {
    scale: &'static str,
    seed: u64,
    jobs: usize,
    artifacts: Vec<Timing>,
    total: Timing,
}

impl Serialize for TimingDoc {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("TimingDoc", 5)?;
        s.serialize_field("scale", &self.scale)?;
        s.serialize_field("seed", &self.seed)?;
        s.serialize_field("jobs", &self.jobs)?;
        s.serialize_field("artifacts", &self.artifacts)?;
        s.serialize_field("total", &self.total)?;
        s.end()
    }
}

/// Prints the registry listing for `--list`.
fn list_artifacts(scale: Scale) {
    println!(
        "artifacts in paper order (packet budgets at scale {}):",
        scale.name()
    );
    for e in registry::REGISTRY {
        println!(
            "  {:<18} {:>9}  {}",
            e.artifact_name(),
            e.packet_budget(scale),
            e.paper_artifact()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Reduced;
    let mut seed = 1996u64;
    let mut jobs = 0usize;
    let mut format = Format::Text;
    let mut list = false;
    let mut validate = false;
    let mut seeds = 3u64;
    let mut timing_json_path: Option<String> = None;
    let mut artifacts: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("reduced") => Scale::Reduced,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                })
            }
            "--jobs" => {
                jobs = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a number (0 = one per core)");
                    std::process::exit(2);
                })
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        eprintln!("unknown format {other:?} (expected text or json)");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => list = true,
            "--check-json" => {
                let path = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--check-json needs a path");
                    std::process::exit(2);
                });
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                });
                match wavelan_analysis::json::parse(&text) {
                    Ok(_) => {
                        eprintln!("[{path}: valid JSON]");
                        return;
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--validate" => validate = true,
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--seeds needs a positive number");
                        std::process::exit(2);
                    })
            }
            "--timing-json" => {
                timing_json_path = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--timing-json needs a path");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!(
                    "repro [--scale smoke|reduced|paper] [--seed N] [--jobs N] \
                     [--format text|json] [--timing-json PATH] [--list] [artifact ...]\n\
                     repro --validate [--seeds N] [--scale smoke|reduced|paper] \
                     [--seed N] [--jobs N] [--format text|json]\n\
                     run `repro --list` for artifact names, paper artifacts, and \
                     packet budgets; `--validate` checks the reproduction against \
                     the paper's published values (exit 1 on any fail verdict)"
                );
                return;
            }
            name => artifacts.push(name.to_string()),
        }
    }
    if list {
        list_artifacts(scale);
        return;
    }
    if validate {
        if !artifacts.is_empty() {
            eprintln!("--validate always checks the full corpus; drop the artifact arguments");
            std::process::exit(2);
        }
        let exec = Executor::new(jobs);
        eprintln!("[executor: {} worker(s)]", exec.jobs());
        let config = wavelan_validate::Config {
            scale,
            base_seed: seed,
            seeds,
        };
        let start = Instant::now();
        let fidelity = wavelan_validate::run(&config, &exec);
        eprintln!("[validate: {:.2}s]", start.elapsed().as_secs_f64());
        match format {
            Format::Text => print!("{}", fidelity.to_report().render()),
            Format::Json => print!("{}", to_string_pretty(&fidelity)),
        }
        std::process::exit(i32::from(fidelity.failed()));
    }
    if artifacts.is_empty() {
        artifacts = ARTIFACTS.iter().map(|s| s.to_string()).collect();
    }

    // Fail fast on unknown names, before any simulation time is spent.
    let mut unknown = false;
    for artifact in &artifacts {
        if registry::find(artifact).is_none() {
            eprintln!("unknown artifact {artifact}");
            unknown = true;
        }
    }
    if unknown {
        eprintln!("valid artifacts: {}", ARTIFACTS.join(" "));
        std::process::exit(2);
    }

    let exec = Executor::new(jobs);
    eprintln!("[executor: {} worker(s)]", exec.jobs());
    if format == Format::Text {
        println!(
            "# Reproduction of Eckhardt & Steenkiste, SIGCOMM '96 (scale {scale:?}, seed {seed})\n"
        );
    }
    let total_start = Instant::now();
    let mut total_packets = 0u64;
    let mut timings: Vec<Timing> = Vec::new();
    let mut reports = Vec::new();
    for artifact in &artifacts {
        let start = Instant::now();
        let report = run_report(artifact, scale, seed, &exec).expect("validated above");
        let elapsed = start.elapsed().as_secs_f64();
        let packets = report.packets;
        match format {
            Format::Text => println!("{}", report.render()),
            Format::Json => reports.push(report),
        }
        // Timing goes to stderr: stdout stays bit-identical across runs and
        // worker counts (the golden regression diffs it verbatim).
        eprintln!(
            "[{artifact}: {:.2}s, {} packets, {:.0} pkt/s]",
            elapsed,
            packets,
            packets as f64 / elapsed.max(1e-9)
        );
        total_packets += packets;
        timings.push(Timing {
            artifact: artifact.clone(),
            seconds: elapsed,
            packets,
        });
    }
    if format == Format::Json {
        let doc = RunDocument {
            scale: scale.name(),
            seed,
            artifacts: reports,
        };
        print!("{}", to_string_pretty(&doc));
    }
    let total = total_start.elapsed().as_secs_f64();
    eprintln!(
        "[total: {:.2}s, {} packets, {:.0} pkt/s]",
        total,
        total_packets,
        total_packets as f64 / total.max(1e-9)
    );
    if let Some(path) = timing_json_path {
        let doc = TimingDoc {
            scale: scale.name(),
            seed,
            jobs: exec.jobs(),
            artifacts: timings,
            total: Timing {
                artifact: String::from("total"),
                seconds: total,
                packets: total_packets,
            },
        };
        if let Err(e) = std::fs::write(&path, to_string_pretty(&doc)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("[timing report written to {path}]");
    }
}
