//! Regenerates the paper's tables and figures — and serves them.
//!
//! ```text
//! repro [--scale smoke|reduced|paper] [--seed N] [--jobs N]
//!       [--format text|json] [--timing-json PATH] [--serve-bench PATH]
//!       [--list] [artifact ...]
//! repro <artifact> --trace-out FILE [--scale S] [--seed N] [--format F]
//! repro <artifact> --capture-bench PATH [--scale S] [--seed N] [--jobs N]
//! repro reanalyze FILE [--format text|json]
//! repro trace-info FILE
//! repro --scenario NAME [--scale S] [--seed N] [--jobs N] [--format F]
//! repro --validate [--seeds N] [--scale smoke|reduced|paper] [--seed N]
//!       [--jobs N] [--format text|json]
//! repro sweep --space NAME|PATH [--points N] [--scale S] [--seed N]
//!       [--jobs N] [--format text|json] [--timing-json PATH]
//! repro serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!       [--timeout-ms N] [--jobs N] [--addr-file PATH] [--store DIR]
//!       [--peers HOST:PORT,...]
//! repro --http-get URL
//! repro --check-json PATH
//! ```
//!
//! With no artifact arguments, everything is regenerated in paper order.
//! Run `repro --list` for the artifact names, the paper artifact each one
//! reproduces, and its packet budget at the selected scale — plus the
//! scripted scenario names and the sweep preset names.
//!
//! `sweep` expands a declarative parameter space (`wavelan-core::sweep`)
//! over a base [`ScenarioSpec`] and runs every point through the
//! deterministic executor, folding the results into a ranked summary
//! (best/worst configurations plus per-knob sensitivity). `--space` names
//! a built-in preset (`--space list` prints them) or a JSON space file;
//! `--points` overrides the sample count of random/LHS spaces. Sweeps
//! default to smoke scale (each point is a full scenario run; a 100-point
//! space at paper scale is 100 paper-scale simulations). Per-point seeds
//! derive from the point's *content*, so the document is bit-identical at
//! any worker count and any axis declaration order.
//!
//! `--scenario NAME` runs one scripted scenario from the event-DAG library
//! (`wavelan-core::scenario`) instead of a registry artifact and renders
//! its report — the scenario's `require` verdicts included. Exit code 0
//! means every require held, 1 means at least one failed, 2 means the name
//! is unknown (the error lists the valid names; `--scenario list` prints
//! them without running anything).
//!
//! `--trace-out FILE` (one artifact only) runs the artifact's canonical
//! scenario through the **streaming** capture pipeline, tees every receiver
//! trace record into a self-describing columnar trace file (the WLTC format
//! — see `wavelan-analysis::tracecodec`), and prints the capture report.
//! `reanalyze FILE` re-runs the paper's classifier over such a file offline
//! — no simulator involved — and reproduces the originating run's report
//! byte-for-byte (the CI gate `cmp`s the two). `trace-info FILE` prints the
//! file's header and stream skeleton without re-analyzing. `--capture-bench
//! PATH` times the buffered vs streamed capture paths for one artifact and
//! writes the comparison as JSON (the BENCH_PR9 numbers).
//!
//! `--validate` runs the paper-fidelity harness (`wavelan-validate`)
//! instead of regenerating artifacts: every expectation for Tables 2–14
//! and Figures 1–3 is checked against `--seeds N` consecutive seeds
//! starting at `--seed` (default 3 seeds from 1996). Exit code 0 means no
//! table failed (warns allowed), 1 means at least one `fail` verdict,
//! 2 means a usage error.
//!
//! `--format json` emits the run as one JSON document (the serde-serialized
//! structured reports — see the "Report model" section of the README)
//! instead of the rendered text tables.
//!
//! `--jobs N` sets the trial executor's worker count (default: one worker
//! per core; `--jobs 1` is fully serial). Trial seeds derive purely from
//! `(experiment id, trial index, base seed)` and results merge in
//! declaration order, so stdout is bit-identical at any worker count —
//! only the wall-clock report on stderr changes.
//!
//! `--timing-json PATH` additionally writes the per-artifact wall-clock
//! numbers (the same data as the stderr lines) as a JSON document, for
//! machine consumption by CI perf tracking.
//!
//! `--check-json PATH` parses a JSON file with the vendored round-trip
//! parser and exits 0 if it is well-formed (2 otherwise) — the CI gate
//! uses it to validate the documents it just wrote without depending on
//! `jq`.
//!
//! `serve` starts the `wavelan-serve` daemon (see that crate's docs for
//! the endpoints and status codes) and drains gracefully on
//! SIGTERM/ctrl-c. `--addr-file PATH` writes the bound address — useful
//! with `--addr 127.0.0.1:0`, where the kernel picks the port. `--store
//! DIR` attaches the persistent result tier: computed responses are
//! written to `DIR` as content-addressed WLST entries, and a restarted
//! daemon re-serves them byte-identically without recomputing. `--peers
//! HOST:PORT,...` (requires an explicit `--addr` that appears in the list)
//! joins a serving group: the nodes consistent-hash the key space and
//! proxy misses to the owning node, so any node answers any request.
//!
//! `--http-get URL` is a minimal HTTP GET client (body to stdout, exit 0
//! only on HTTP 200) so CI can poke the daemon without `curl`.
//!
//! `--serve-bench PATH` extends `--timing-json` with a serve-latency
//! section: it boots an in-process daemon, measures a cold `/run`
//! (simulates) versus a cached one (memory) for the first artifact of the
//! run, then drives a closed-loop load harness over a keep-alive
//! connection pool — an uncapped burst to find the ceiling, then paced
//! steps at fractions of it, recording achieved QPS and p50/p95/p99
//! latency per step and the saturation point (the highest target the
//! daemon met within 90%). The BENCH_SERVE numbers.
//!
//! Unknown flags, unknown artifacts, and malformed values all exit 2 with
//! a usage message.

use serde::{Serialize, SerializeStruct, Serializer};
use std::time::{Duration, Instant};
use wavelan_analysis::json::to_string_pretty;
use wavelan_bench::{run_report, RunDocument, ARTIFACTS};
use wavelan_core::{registry, Executor, Scale};

/// One-line usage summary, printed with every usage error (exit 2).
const USAGE: &str = "\
usage: repro [--scale smoke|reduced|paper] [--seed N] [--jobs N]
             [--format text|json] [--timing-json PATH] [--serve-bench PATH]
             [--list] [artifact ...]
       repro <artifact> --trace-out FILE [--scale S] [--seed N] [--format F]
       repro <artifact> --capture-bench PATH [--scale S] [--seed N] [--jobs N]
       repro reanalyze FILE [--format text|json]
       repro trace-info FILE
       repro --scenario NAME [--scale S] [--seed N] [--jobs N] [--format F]
       repro --validate [--seeds N] [--scale S] [--seed N] [--jobs N] [--format F]
       repro sweep --space NAME|PATH [--points N] [--scale S] [--seed N]
             [--jobs N] [--format text|json] [--timing-json PATH]
       repro serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
             [--timeout-ms N] [--jobs N] [--addr-file PATH] [--store DIR]
             [--peers HOST:PORT,...]
       repro --http-get URL
       repro --check-json PATH
run `repro --list` for artifact names and `repro --help` for details";

/// Prints `message` and the usage block to stderr, then exits 2 — the
/// contract for every malformed invocation (pinned by the CLI tests).
fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Output format of the run.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    /// The rendered text tables (the golden-transcript format).
    Text,
    /// One JSON document of serde-serialized [`wavelan_analysis::Report`]s.
    Json,
}

/// One timed artifact, for the `--timing-json` report.
struct Timing {
    artifact: String,
    seconds: f64,
    packets: u64,
}

impl Serialize for Timing {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Timing", 4)?;
        s.serialize_field("artifact", &self.artifact)?;
        s.serialize_field("seconds", &self.seconds)?;
        s.serialize_field("packets", &self.packets)?;
        s.serialize_field(
            "pkt_per_sec",
            &(self.packets as f64 / self.seconds.max(1e-9)),
        )?;
        s.end()
    }
}

/// The whole `--timing-json` document; `--serve-bench` adds the `serve`
/// section.
struct TimingDoc {
    scale: &'static str,
    seed: u64,
    jobs: usize,
    artifacts: Vec<Timing>,
    total: Timing,
    serve: Option<ServeBench>,
}

impl Serialize for TimingDoc {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("TimingDoc", 6)?;
        s.serialize_field("scale", &self.scale)?;
        s.serialize_field("seed", &self.seed)?;
        s.serialize_field("jobs", &self.jobs)?;
        s.serialize_field("artifacts", &self.artifacts)?;
        s.serialize_field("total", &self.total)?;
        if let Some(serve) = &self.serve {
            s.serialize_field("serve", serve)?;
        }
        s.end()
    }
}

/// Cold-vs-cached serve latency plus the closed-loop load profile for
/// one artifact, from an in-process daemon (`--serve-bench`).
struct ServeBench {
    artifact: String,
    scale: &'static str,
    seed: u64,
    cold_seconds: f64,
    cached_seconds: f64,
    /// `cold_seconds / cached_seconds` — how much the result cache buys.
    speedup: f64,
    /// Response body length, identical cold and cached.
    body_bytes: usize,
    /// Throughput of the uncapped warm burst — the harness ceiling.
    max_qps: f64,
    /// Paced closed-loop steps at fractions of `max_qps`.
    load: Vec<LoadStep>,
    /// Highest target QPS the daemon met within 90% (0 if none did).
    saturation_qps: f64,
}

impl Serialize for ServeBench {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("ServeBench", 10)?;
        s.serialize_field("artifact", &self.artifact)?;
        s.serialize_field("scale", &self.scale)?;
        s.serialize_field("seed", &self.seed)?;
        s.serialize_field("cold_seconds", &self.cold_seconds)?;
        s.serialize_field("cached_seconds", &self.cached_seconds)?;
        s.serialize_field("speedup", &self.speedup)?;
        s.serialize_field("body_bytes", &self.body_bytes)?;
        s.serialize_field("max_qps", &self.max_qps)?;
        s.serialize_field("load", &self.load)?;
        s.serialize_field("saturation_qps", &self.saturation_qps)?;
        s.end()
    }
}

/// One paced step of the closed-loop load harness: requests issued at
/// `target_qps` over keep-alive connections, latencies recorded.
struct LoadStep {
    target_qps: f64,
    achieved_qps: f64,
    requests: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

impl Serialize for LoadStep {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("LoadStep", 6)?;
        s.serialize_field("target_qps", &self.target_qps)?;
        s.serialize_field("achieved_qps", &self.achieved_qps)?;
        s.serialize_field("requests", &self.requests)?;
        s.serialize_field("p50_us", &self.p50_us)?;
        s.serialize_field("p95_us", &self.p95_us)?;
        s.serialize_field("p99_us", &self.p99_us)?;
        s.end()
    }
}

/// Prints the registry listing for `--list`, plus the scripted scenario
/// names and the sweep presets (the other two runnable namespaces).
fn list_artifacts(scale: Scale) {
    println!(
        "artifacts in paper order (packet budgets at scale {}):",
        scale.name()
    );
    for e in registry::REGISTRY {
        println!(
            "  {:<18} {:>9}  {}",
            e.artifact_name(),
            e.packet_budget(scale),
            e.paper_artifact()
        );
    }
    println!("\nscenarios (event-DAG scripts; run with --scenario <name>):");
    for n in wavelan_core::scenario::SCENARIO_NAMES {
        println!("  {n}");
    }
    println!("\nsweep presets (run with `repro sweep --space <name>`):");
    for name in wavelan_core::sweep::PRESET_NAMES {
        let space = wavelan_core::sweep::preset(name).expect("preset names resolve");
        let axes: Vec<&str> = space.axes.iter().map(|a| a.field.as_str()).collect();
        println!(
            "  {:<12} {:>4} points  {} over {}",
            name,
            space.len(),
            space.sampling.name(),
            axes.join(" x ")
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("sweep") {
        sweep_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("reanalyze") {
        reanalyze_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace-info") {
        trace_info_main(&args[1..]);
    }
    let mut scale = Scale::Reduced;
    let mut seed = 1996u64;
    let mut jobs = 0usize;
    let mut format = Format::Text;
    let mut list = false;
    let mut validate = false;
    let mut scenario: Option<String> = None;
    let mut seeds = 3u64;
    let mut timing_json_path: Option<String> = None;
    let mut serve_bench_path: Option<String> = None;
    let mut trace_out_path: Option<String> = None;
    let mut capture_bench_path: Option<String> = None;
    let mut artifacts: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("reduced") => Scale::Reduced,
                    Some("paper") => Scale::Paper,
                    other => usage_error(&format!("unknown scale {other:?}")),
                }
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--seed needs an unsigned number"))
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--jobs needs a number (0 = one per core)"))
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => usage_error(&format!("unknown format {other:?} (text or json)")),
                }
            }
            "--list" => list = true,
            "--check-json" => {
                let path = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| usage_error("--check-json needs a path"));
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                });
                match wavelan_analysis::json::parse(&text) {
                    Ok(_) => {
                        eprintln!("[{path}: valid JSON]");
                        return;
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--http-get" => {
                let url = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| usage_error("--http-get needs a URL"));
                http_get(&url);
            }
            "--validate" => validate = true,
            "--scenario" => {
                scenario = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--scenario needs a name (or `list`)")),
                )
            }
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage_error("--seeds needs a positive number"))
            }
            "--timing-json" => {
                timing_json_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--timing-json needs a path")),
                )
            }
            "--serve-bench" => {
                serve_bench_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--serve-bench needs a path")),
                )
            }
            "--trace-out" => {
                trace_out_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--trace-out needs a path")),
                )
            }
            "--capture-bench" => {
                capture_bench_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--capture-bench needs a path")),
                )
            }
            "--help" | "-h" => {
                println!(
                    "{USAGE}\n\
                     `--validate` checks the reproduction against the paper's \
                     published values (exit 1 on any fail verdict); `sweep` \
                     expands a parameter space over a base scenario spec and \
                     prints the ranked summary (`--space list` for presets); \
                     `serve` starts the HTTP daemon (endpoints: /healthz \
                     /artifacts /run/{{artifact}} /validate /sweep /metrics) \
                     and drains on SIGTERM/ctrl-c"
                );
                return;
            }
            flag if flag.starts_with('-') => usage_error(&format!("unknown flag {flag}")),
            name => artifacts.push(name.to_string()),
        }
    }
    if list {
        list_artifacts(scale);
        return;
    }
    if let Some(name) = scenario {
        if validate {
            usage_error("--scenario and --validate are mutually exclusive");
        }
        if !artifacts.is_empty() {
            eprintln!("--scenario runs one named scenario; drop the artifact arguments");
            std::process::exit(2);
        }
        run_scenario(&name, scale, seed, jobs, format);
    }
    if validate {
        if !artifacts.is_empty() {
            eprintln!("--validate always checks the full corpus; drop the artifact arguments");
            std::process::exit(2);
        }
        let exec = Executor::new(jobs);
        eprintln!("[executor: {} worker(s)]", exec.jobs());
        let config = wavelan_validate::Config {
            scale,
            base_seed: seed,
            seeds,
        };
        let start = Instant::now();
        let fidelity = wavelan_validate::run(&config, &exec);
        eprintln!("[validate: {:.2}s]", start.elapsed().as_secs_f64());
        match format {
            Format::Text => print!("{}", fidelity.to_report().render()),
            Format::Json => print!("{}", to_string_pretty(&fidelity)),
        }
        std::process::exit(i32::from(fidelity.failed()));
    }
    if artifacts.is_empty() {
        artifacts = ARTIFACTS.iter().map(|s| s.to_string()).collect();
    }

    // Fail fast on unknown names, before any simulation time is spent.
    let mut unknown = false;
    for artifact in &artifacts {
        if registry::find(artifact).is_none() {
            eprintln!("unknown artifact {artifact}");
            unknown = true;
        }
    }
    if unknown {
        eprintln!("valid artifacts: {}", ARTIFACTS.join(" "));
        std::process::exit(2);
    }

    if let Some(path) = trace_out_path {
        if artifacts.len() != 1 {
            usage_error("--trace-out captures exactly one artifact (name it explicitly)");
        }
        run_trace_export(&artifacts[0], &path, scale, seed, format);
    }
    if let Some(path) = capture_bench_path {
        if artifacts.len() != 1 {
            usage_error("--capture-bench times exactly one artifact (name it explicitly)");
        }
        run_capture_bench(&artifacts[0], &path, scale, seed, jobs);
    }

    let exec = Executor::new(jobs);
    eprintln!("[executor: {} worker(s)]", exec.jobs());
    if format == Format::Text {
        println!(
            "# Reproduction of Eckhardt & Steenkiste, SIGCOMM '96 (scale {scale:?}, seed {seed})\n"
        );
    }
    let total_start = Instant::now();
    let mut total_packets = 0u64;
    let mut timings: Vec<Timing> = Vec::new();
    let mut reports = Vec::new();
    for artifact in &artifacts {
        let start = Instant::now();
        let report = run_report(artifact, scale, seed, &exec).expect("validated above");
        let elapsed = start.elapsed().as_secs_f64();
        let packets = report.packets;
        match format {
            Format::Text => println!("{}", report.render()),
            Format::Json => reports.push(report),
        }
        // Timing goes to stderr: stdout stays bit-identical across runs and
        // worker counts (the golden regression diffs it verbatim).
        eprintln!(
            "[{artifact}: {:.2}s, {} packets, {:.0} pkt/s]",
            elapsed,
            packets,
            packets as f64 / elapsed.max(1e-9)
        );
        total_packets += packets;
        timings.push(Timing {
            artifact: artifact.clone(),
            seconds: elapsed,
            packets,
        });
    }
    if format == Format::Json {
        let doc = RunDocument {
            scale: scale.name(),
            seed,
            artifacts: reports,
        };
        print!("{}", to_string_pretty(&doc));
    }
    let total = total_start.elapsed().as_secs_f64();
    eprintln!(
        "[total: {:.2}s, {} packets, {:.0} pkt/s]",
        total,
        total_packets,
        total_packets as f64 / total.max(1e-9)
    );
    if timing_json_path.is_some() || serve_bench_path.is_some() {
        let mut doc = TimingDoc {
            scale: scale.name(),
            seed,
            jobs: exec.jobs(),
            artifacts: timings,
            total: Timing {
                artifact: String::from("total"),
                seconds: total,
                packets: total_packets,
            },
            serve: None,
        };
        if let Some(path) = timing_json_path {
            write_json_or_die(&path, &to_string_pretty(&doc));
            eprintln!("[timing report written to {path}]");
        }
        if let Some(path) = serve_bench_path {
            let artifact = artifacts.first().expect("run loop requires artifacts");
            doc.serve = Some(bench_serve(artifact, scale, seed).unwrap_or_else(|why| {
                eprintln!("serve benchmark failed: {why}");
                std::process::exit(1);
            }));
            write_json_or_die(&path, &to_string_pretty(&doc));
            eprintln!("[serve benchmark written to {path}]");
        }
    }
}

/// One sweep's wall-clock record, for `sweep --timing-json` (CI throughput
/// tracking — points per second is the headline).
struct SweepTiming {
    space: String,
    space_hash: String,
    sampling: String,
    scale: &'static str,
    seed: u64,
    jobs: usize,
    points: usize,
    total_packets: u64,
    seconds: f64,
}

impl Serialize for SweepTiming {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("SweepTiming", 11)?;
        s.serialize_field("space", &self.space)?;
        s.serialize_field("space_hash", &self.space_hash)?;
        s.serialize_field("sampling", &self.sampling)?;
        s.serialize_field("scale", &self.scale)?;
        s.serialize_field("seed", &self.seed)?;
        s.serialize_field("jobs", &self.jobs)?;
        s.serialize_field("points", &self.points)?;
        s.serialize_field("total_packets", &self.total_packets)?;
        s.serialize_field("seconds", &self.seconds)?;
        s.serialize_field(
            "points_per_sec",
            &(self.points as f64 / self.seconds.max(1e-9)),
        )?;
        s.serialize_field(
            "pkt_per_sec",
            &(self.total_packets as f64 / self.seconds.max(1e-9)),
        )?;
        s.end()
    }
}

/// The `repro sweep` subcommand: expand a parameter space and run it over
/// the deterministic executor, printing the ranked summary. Exit 0 on
/// success, 2 on usage/parse errors.
fn sweep_main(args: &[String]) -> ! {
    use wavelan_core::sweep::{preset, ParameterSpace, PRESET_NAMES};
    let mut space_arg: Option<String> = None;
    let mut points: Option<usize> = None;
    // Sweeps default to smoke: every point is a full scenario run, so the
    // per-point budget multiplies by the space size.
    let mut scale = Scale::Smoke;
    let mut seed = 1996u64;
    let mut jobs = 0usize;
    let mut format = Format::Text;
    let mut timing_json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--space" => {
                space_arg = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--space needs a preset name or a path")),
                )
            }
            "--points" => {
                points = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|n| *n > 0)
                        .unwrap_or_else(|| usage_error("--points needs a positive number")),
                )
            }
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("reduced") => Scale::Reduced,
                    Some("paper") => Scale::Paper,
                    other => usage_error(&format!("unknown scale {other:?}")),
                }
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--seed needs an unsigned number"))
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--jobs needs a number (0 = one per core)"))
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => usage_error(&format!("unknown format {other:?} (text or json)")),
                }
            }
            "--timing-json" => {
                timing_json_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--timing-json needs a path")),
                )
            }
            flag => usage_error(&format!("unknown sweep flag {flag}")),
        }
    }
    let Some(space_arg) = space_arg else {
        usage_error("sweep needs --space NAME|PATH (`--space list` prints the presets)");
    };
    if space_arg == "list" {
        println!("sweep presets (run with `repro sweep --space <name>`):");
        for name in PRESET_NAMES {
            println!("  {name}");
        }
        std::process::exit(0);
    }
    let mut space = match preset(&space_arg) {
        Some(space) => space,
        None => {
            let text = std::fs::read_to_string(&space_arg).unwrap_or_else(|e| {
                eprintln!("{space_arg} is neither a preset nor a readable space file: {e}");
                eprintln!("presets: {}", PRESET_NAMES.join(" "));
                std::process::exit(2);
            });
            ParameterSpace::parse(&text).unwrap_or_else(|e| {
                eprintln!("{space_arg}: {e}");
                std::process::exit(2);
            })
        }
    };
    if let Some(points) = points {
        space = space.with_points(points);
    }
    let exec = Executor::new(jobs);
    eprintln!("[executor: {} worker(s)]", exec.jobs());
    let start = Instant::now();
    let doc = space.run(scale, seed, &exec).unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(2);
    });
    let seconds = start.elapsed().as_secs_f64();
    // Timing to stderr only: stdout stays bit-identical across runs and
    // worker counts.
    eprintln!(
        "[sweep {}: {} points, {:.2}s, {:.1} points/s]",
        doc.space,
        doc.points.len(),
        seconds,
        doc.points.len() as f64 / seconds.max(1e-9)
    );
    match format {
        Format::Text => print!("{}", doc.render_text()),
        Format::Json => print!("{}", to_string_pretty(&doc)),
    }
    if let Some(path) = timing_json_path {
        let timing = SweepTiming {
            space: doc.space.clone(),
            space_hash: format!("{:016x}", doc.space_hash),
            sampling: doc.sampling.to_string(),
            scale: scale.name(),
            seed,
            jobs: exec.jobs(),
            points: doc.points.len(),
            total_packets: doc.total_packets,
            seconds,
        };
        write_json_or_die(&path, &to_string_pretty(&timing));
        eprintln!("[sweep timing written to {path}]");
    }
    std::process::exit(0);
}

/// `--scenario NAME`: run one event-DAG library scenario and render its
/// report (require verdicts included). Exit 0 if every require held, 1 if
/// any failed, 2 if the name is unknown.
fn run_scenario(name: &str, scale: Scale, seed: u64, jobs: usize, format: Format) -> ! {
    use wavelan_core::scenario::{run_named, SCENARIO_NAMES};
    if name == "list" {
        println!("scenarios (event-DAG scripts; run with --scenario <name>):");
        for n in SCENARIO_NAMES {
            println!("  {n}");
        }
        std::process::exit(0);
    }
    let exec = Executor::new(jobs);
    eprintln!("[executor: {} worker(s)]", exec.jobs());
    let start = Instant::now();
    let Some(run) = run_named(name, seed, scale, &exec) else {
        eprintln!("unknown scenario {name}");
        eprintln!("valid scenarios: {}", SCENARIO_NAMES.join(" "));
        std::process::exit(2);
    };
    // Timing to stderr only: stdout stays bit-identical across runs and
    // worker counts (the CI gate diffs it against a golden transcript).
    eprintln!("[scenario {name}: {:.2}s]", start.elapsed().as_secs_f64());
    match format {
        Format::Text => print!("{}", run.report.render()),
        Format::Json => print!("{}", to_string_pretty(&run.report)),
    }
    std::process::exit(i32::from(!run.passed()));
}

/// `<artifact> --trace-out FILE`: run the streaming capture pipeline,
/// teeing every receiver record into a columnar trace file, and print the
/// capture report — the report `reanalyze` must reproduce byte-for-byte.
fn run_trace_export(artifact: &str, path: &str, scale: Scale, seed: u64, format: Format) -> ! {
    let entry = registry::find(artifact).expect("validated by caller");
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(2);
    });
    let start = Instant::now();
    let report = wavelan_core::export_trace(entry, scale, seed, std::io::BufWriter::new(file))
        .unwrap_or_else(|e| {
            eprintln!("trace export failed: {e}");
            std::process::exit(1);
        });
    // Timing to stderr only: stdout is the report `reanalyze` is compared
    // against, so it must carry no wall-clock noise.
    eprintln!(
        "[trace {artifact}: {:.2}s, {} packets, written to {path}]",
        start.elapsed().as_secs_f64(),
        report.packets
    );
    match format {
        Format::Text => print!("{}", report.render()),
        Format::Json => print!("{}", to_string_pretty(&report)),
    }
    std::process::exit(0);
}

/// `reanalyze FILE`: re-run the paper's classifier over an exported trace,
/// offline, and print the reconstructed report. Exit 0 on success, 1 on a
/// decode/conformance error, 2 on usage errors.
fn reanalyze_main(args: &[String]) -> ! {
    let mut format = Format::Text;
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => usage_error(&format!("unknown format {other:?} (text or json)")),
                }
            }
            flag if flag.starts_with('-') => {
                usage_error(&format!("unknown reanalyze flag {flag}"))
            }
            file if path.is_none() => path = Some(file.to_string()),
            _ => usage_error("reanalyze takes exactly one trace file"),
        }
    }
    let Some(path) = path else {
        usage_error("reanalyze needs a trace file path");
    };
    let file = std::fs::File::open(&path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(2);
    });
    let start = Instant::now();
    let report = wavelan_core::reanalyze_file(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    // Timing to stderr only: stdout must be byte-identical to the live run.
    eprintln!("[reanalyze {path}: {:.2}s]", start.elapsed().as_secs_f64());
    match format {
        Format::Text => print!("{}", report.render()),
        Format::Json => print!("{}", to_string_pretty(&report)),
    }
    std::process::exit(0);
}

/// `trace-info FILE`: print a trace file's header and stream skeleton
/// (pinned by the golden header snapshot). Exit 0 on success, 1 on decode
/// errors, 2 on usage errors.
fn trace_info_main(args: &[String]) -> ! {
    let [path] = args else {
        usage_error("trace-info takes exactly one trace file");
    };
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(2);
    });
    match wavelan_core::trace_info(std::io::BufReader::new(file)) {
        Ok(info) => {
            print!("{info}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Buffered-vs-streamed capture throughput for one artifact, as JSON
/// (`--capture-bench` — the BENCH_PR9 numbers).
struct CaptureBench {
    artifact: String,
    scale: &'static str,
    seed: u64,
    jobs: usize,
    packets: u64,
    buffered_seconds: f64,
    streamed_seconds: f64,
    buffered_pkt_per_sec: f64,
    streamed_pkt_per_sec: f64,
    /// `buffered_seconds / streamed_seconds` — above 1.0 means streaming
    /// is faster.
    streamed_speedup: f64,
}

impl Serialize for CaptureBench {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("CaptureBench", 10)?;
        s.serialize_field("artifact", &self.artifact)?;
        s.serialize_field("scale", &self.scale)?;
        s.serialize_field("seed", &self.seed)?;
        s.serialize_field("jobs", &self.jobs)?;
        s.serialize_field("packets", &self.packets)?;
        s.serialize_field("buffered_seconds", &self.buffered_seconds)?;
        s.serialize_field("streamed_seconds", &self.streamed_seconds)?;
        s.serialize_field("buffered_pkt_per_sec", &self.buffered_pkt_per_sec)?;
        s.serialize_field("streamed_pkt_per_sec", &self.streamed_pkt_per_sec)?;
        s.serialize_field("streamed_speedup", &self.streamed_speedup)?;
        s.end()
    }
}

/// `<artifact> --capture-bench PATH`: time the buffered and streamed
/// capture paths (same trials, same seeds), assert their reports agree, and
/// write the comparison as JSON.
fn run_capture_bench(artifact: &str, path: &str, scale: Scale, seed: u64, jobs: usize) -> ! {
    use wavelan_core::{capture_report, CaptureMode};
    let entry = registry::find(artifact).expect("validated by caller");
    let exec = Executor::new(jobs);
    eprintln!("[executor: {} worker(s)]", exec.jobs());
    let time = |mode: CaptureMode| {
        let start = Instant::now();
        let report = capture_report(entry, scale, seed, &exec, mode);
        (start.elapsed().as_secs_f64(), report)
    };
    let (buffered_seconds, buffered) = time(CaptureMode::Buffered);
    let (streamed_seconds, streamed) = time(CaptureMode::Streamed);
    if buffered.render() != streamed.render() {
        eprintln!("capture paths disagree: buffered and streamed reports differ");
        std::process::exit(1);
    }
    let packets = buffered.packets;
    let bench = CaptureBench {
        artifact: artifact.to_string(),
        scale: scale.name(),
        seed,
        jobs: exec.jobs(),
        packets,
        buffered_seconds,
        streamed_seconds,
        buffered_pkt_per_sec: packets as f64 / buffered_seconds.max(1e-9),
        streamed_pkt_per_sec: packets as f64 / streamed_seconds.max(1e-9),
        streamed_speedup: buffered_seconds / streamed_seconds.max(1e-9),
    };
    eprintln!(
        "[capture {artifact}: buffered {:.3}s, streamed {:.3}s, {:.2}x]",
        buffered_seconds, streamed_seconds, bench.streamed_speedup
    );
    write_json_or_die(path, &to_string_pretty(&bench));
    eprintln!("[capture benchmark written to {path}]");
    std::process::exit(0);
}

/// Writes a JSON document or exits 2 with the I/O error.
fn write_json_or_die(path: &str, json: &str) {
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
}

/// `--http-get URL`: fetch, print the body, exit 0 only on HTTP 200.
fn http_get(url: &str) -> ! {
    if wavelan_serve::client::split_url(url).is_none() {
        usage_error(&format!(
            "--http-get needs an http://host:port/path URL, got {url:?}"
        ));
    }
    match wavelan_serve::client::get_url(url, Duration::from_secs(60)) {
        Ok(response) => {
            print!("{}", response.body);
            if response.status == 200 {
                std::process::exit(0);
            }
            eprintln!("[{url}: HTTP {}]", response.status);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("{url}: {e}");
            std::process::exit(1);
        }
    }
}

/// `--serve-bench`: boots an in-process daemon on an ephemeral port and
/// measures one artifact's `/run` cold (simulating) and cached (memory).
fn bench_serve(artifact: &str, scale: Scale, seed: u64) -> Result<ServeBench, String> {
    use wavelan_serve::{client, Config, Server};
    let server = Server::bind(
        "127.0.0.1:0",
        Config {
            workers: 2,
            ..Config::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("addr: {e}"))?
        .to_string();
    let handle = server.shutdown_handle();
    let daemon = std::thread::spawn(move || server.run());
    let ready =
        (0..200).any(
            |_| match client::get(&addr, "/healthz", Duration::from_millis(250)) {
                Ok(r) if r.status == 200 => true,
                _ => {
                    std::thread::sleep(Duration::from_millis(10));
                    false
                }
            },
        );
    if !ready {
        handle.request();
        let _ = daemon.join();
        return Err(String::from("daemon never became healthy"));
    }
    let path = format!("/run/{artifact}?seed={seed}&scale={}", scale.name());
    let fetch = |label: &str| -> Result<(f64, String), String> {
        let start = Instant::now();
        let response = client::get(&addr, &path, Duration::from_secs(600))
            .map_err(|e| format!("{label} fetch: {e}"))?;
        let elapsed = start.elapsed().as_secs_f64();
        if response.status != 200 {
            return Err(format!("{label} fetch: HTTP {}", response.status));
        }
        Ok((elapsed, response.body))
    };
    let result = fetch("cold")
        .and_then(|(cold_seconds, cold_body)| {
            let (cached_seconds, cached_body) = fetch("cached")?;
            if cold_body != cached_body {
                return Err(String::from("cached body differs from cold body"));
            }
            Ok(ServeBench {
                artifact: artifact.to_string(),
                scale: scale.name(),
                seed,
                cold_seconds,
                cached_seconds,
                speedup: cold_seconds / cached_seconds.max(1e-9),
                body_bytes: cold_body.len(),
                max_qps: 0.0,
                load: Vec::new(),
                saturation_qps: 0.0,
            })
        })
        .and_then(|bench| run_load_harness(&addr, &path, bench));
    handle.request();
    let _ = daemon.join();
    let bench = result?;
    eprintln!(
        "[serve: {artifact} cold {:.4}s, cached {:.6}s, {:.0}x; \
         max {:.0} qps, saturation {:.0} qps]",
        bench.cold_seconds, bench.cached_seconds, bench.speedup, bench.max_qps, bench.saturation_qps
    );
    Ok(bench)
}

/// The closed-loop section of `--serve-bench`: an uncapped warm burst
/// over keep-alive connections finds the throughput ceiling, then paced
/// steps at fractions of it record achieved QPS and latency percentiles.
/// Saturation is the highest target the daemon met within 90%.
fn run_load_harness(addr: &str, path: &str, mut bench: ServeBench) -> Result<ServeBench, String> {
    const WINDOW: Duration = Duration::from_millis(400);
    const FRACTIONS: [f64; 5] = [0.25, 0.5, 0.75, 0.9, 1.05];
    let burst = load_window(addr, path, 0.0, WINDOW)?;
    if burst.is_empty() {
        return Err(String::from("uncapped burst completed no requests"));
    }
    bench.max_qps = burst.len() as f64 / WINDOW.as_secs_f64();
    for fraction in FRACTIONS {
        let target_qps = bench.max_qps * fraction;
        let mut lat = load_window(addr, path, target_qps, WINDOW)?;
        let achieved_qps = lat.len() as f64 / WINDOW.as_secs_f64();
        lat.sort_by(|a, b| a.total_cmp(b));
        if achieved_qps >= 0.9 * target_qps {
            bench.saturation_qps = bench.saturation_qps.max(target_qps);
        }
        bench.load.push(LoadStep {
            target_qps,
            achieved_qps,
            requests: lat.len(),
            p50_us: percentile(&lat, 50.0),
            p95_us: percentile(&lat, 95.0),
            p99_us: percentile(&lat, 99.0),
        });
    }
    Ok(bench)
}

/// Issues closed-loop requests over a small keep-alive connection pool
/// for `window`, pacing to `target_qps` (0 = uncapped), and returns the
/// per-request latencies in microseconds. Reconnects once per request if
/// the server retires a connection (per-connection request cap).
fn load_window(
    addr: &str,
    path: &str,
    target_qps: f64,
    window: Duration,
) -> Result<Vec<f64>, String> {
    use wavelan_serve::client::Conn;
    const POOL: usize = 2;
    let timeout = Duration::from_secs(10);
    let mut pool = Vec::with_capacity(POOL);
    for _ in 0..POOL {
        pool.push(Conn::connect(addr, timeout).map_err(|e| format!("load connect: {e}"))?);
    }
    let interval = if target_qps > 0.0 {
        Duration::from_secs_f64(1.0 / target_qps)
    } else {
        Duration::ZERO
    };
    let start = Instant::now();
    let mut latencies = Vec::new();
    let mut sent = 0usize;
    loop {
        let now = start.elapsed();
        if now >= window {
            break;
        }
        if !interval.is_zero() {
            let due = interval.mul_f64(sent as f64);
            if due > now {
                std::thread::sleep(due - now);
                if start.elapsed() >= window {
                    break;
                }
            }
        }
        let conn = &mut pool[sent % POOL];
        let issued = Instant::now();
        let response = match conn.request(path) {
            Ok(r) => r,
            Err(_) => {
                *conn = Conn::connect(addr, timeout).map_err(|e| format!("load reconnect: {e}"))?;
                conn.request(path).map_err(|e| format!("load fetch: {e}"))?
            }
        };
        if response.status != 200 {
            return Err(format!("load fetch: HTTP {}", response.status));
        }
        latencies.push(issued.elapsed().as_secs_f64() * 1e6);
        sent += 1;
    }
    Ok(latencies)
}

/// Nearest-rank percentile over an ascending-sorted slice (0 if empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The `repro serve` subcommand: parse flags, install signal handlers,
/// run the daemon until SIGTERM/ctrl-c, drain, exit 0.
fn serve_main(args: &[String]) -> ! {
    use wavelan_serve::{signals, Config, Server};
    let mut addr = String::from("127.0.0.1:8095");
    let mut addr_file: Option<String> = None;
    let mut config = Config::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| usage_error("--addr needs HOST:PORT"))
            }
            "--addr-file" => {
                addr_file = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--addr-file needs a path")),
                )
            }
            "--workers" => {
                config.workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--workers needs a number (0 = one per core)"))
            }
            "--queue" => {
                config.queue_depth = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--queue needs a number"))
            }
            "--cache" => {
                config.cache_capacity = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--cache needs a number of entries"))
            }
            "--timeout-ms" => {
                config.request_timeout = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| usage_error("--timeout-ms needs a number"))
            }
            "--jobs" => {
                config.jobs_per_run = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--jobs needs a number (0 = one per core)"))
            }
            "--store" => {
                config.store_dir = Some(std::path::PathBuf::from(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error("--store needs a directory")),
                ))
            }
            "--peers" => {
                config.peers = it
                    .next()
                    .map(|s| s.split(',').map(str::to_string).collect())
                    .unwrap_or_else(|| usage_error("--peers needs HOST:PORT,..."))
            }
            flag => usage_error(&format!("unknown serve flag {flag}")),
        }
    }
    if !config.peers.is_empty() {
        if !config.peers.iter().any(|p| p == &addr) {
            usage_error("--peers requires an explicit --addr that appears in the peer list");
        }
        config.self_addr = Some(addr.clone());
    }
    signals::install();
    let server = Server::bind(&addr, config).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let bound = server
        .local_addr()
        .expect("bound listener has an address")
        .to_string();
    eprintln!(
        "[serving on {bound}; {} worker(s); SIGTERM or ctrl-c drains]",
        server.workers()
    );
    if let Some(path) = &addr_file {
        if let Err(e) = std::fs::write(path, &bound) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    let handle = server.shutdown_handle();
    std::thread::spawn(move || loop {
        if signals::triggered() {
            handle.request();
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });
    match server.run() {
        Ok(()) => {
            eprintln!("[drained, shutting down]");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    }
}
