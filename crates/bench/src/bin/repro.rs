//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale smoke|reduced|paper] [--seed N] [--jobs N] [artifact ...]
//! ```
//!
//! With no artifact arguments, everything is regenerated in paper order.
//! Artifacts: `table2 figure1 table3 figure2 figure3 table4 table5-7 table8-9
//! table10 table11-13 table14 fec harq related-work tdma quality-threshold
//! roaming hidden-terminal`.
//!
//! `--jobs N` sets the trial executor's worker count (default: one worker
//! per core; `--jobs 1` is fully serial). Trial seeds derive purely from
//! `(experiment id, trial index, base seed)` and results merge in
//! declaration order, so stdout is bit-identical at any worker count —
//! only the wall-clock report on stderr changes.

use std::time::Instant;
use wavelan_bench::{run_artifact, ARTIFACTS};
use wavelan_core::{Executor, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Reduced;
    let mut seed = 1996u64;
    let mut jobs = 0usize;
    let mut artifacts: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("reduced") => Scale::Reduced,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                })
            }
            "--jobs" => {
                jobs = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a number (0 = one per core)");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "repro [--scale smoke|reduced|paper] [--seed N] [--jobs N] [artifact ...]\n\
                     artifacts: {}",
                    ARTIFACTS.join(" ")
                );
                return;
            }
            name => artifacts.push(name.to_string()),
        }
    }
    if artifacts.is_empty() {
        artifacts = ARTIFACTS.iter().map(|s| s.to_string()).collect();
    }

    let exec = Executor::new(jobs);
    eprintln!("[executor: {} worker(s)]", exec.jobs());
    println!(
        "# Reproduction of Eckhardt & Steenkiste, SIGCOMM '96 (scale {scale:?}, seed {seed})\n"
    );
    let total_start = Instant::now();
    let mut total_packets = 0u64;
    let mut unknown = 0usize;
    for artifact in &artifacts {
        let start = Instant::now();
        let Some(run) = run_artifact(artifact, scale, seed, &exec) else {
            eprintln!("unknown artifact {artifact}");
            unknown += 1;
            continue;
        };
        let elapsed = start.elapsed().as_secs_f64();
        println!("{}", run.text);
        // Timing goes to stderr: stdout stays bit-identical across runs and
        // worker counts (the golden regression diffs it verbatim).
        eprintln!(
            "[{artifact}: {:.2}s, {} packets, {:.0} pkt/s]",
            elapsed,
            run.packets,
            run.packets as f64 / elapsed.max(1e-9)
        );
        total_packets += run.packets;
    }
    let total = total_start.elapsed().as_secs_f64();
    eprintln!(
        "[total: {:.2}s, {} packets, {:.0} pkt/s]",
        total,
        total_packets,
        total_packets as f64 / total.max(1e-9)
    );
    if unknown > 0 {
        std::process::exit(2);
    }
}
