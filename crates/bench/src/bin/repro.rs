//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale smoke|reduced|paper] [--seed N] [--jobs N]
//!       [--timing-json PATH] [artifact ...]
//! ```
//!
//! With no artifact arguments, everything is regenerated in paper order.
//! Artifacts: `table2 figure1 table3 figure2 figure3 table4 table5-7 table8-9
//! table10 table11-13 table14 fec harq related-work tdma quality-threshold
//! roaming hidden-terminal`.
//!
//! `--jobs N` sets the trial executor's worker count (default: one worker
//! per core; `--jobs 1` is fully serial). Trial seeds derive purely from
//! `(experiment id, trial index, base seed)` and results merge in
//! declaration order, so stdout is bit-identical at any worker count —
//! only the wall-clock report on stderr changes.
//!
//! `--timing-json PATH` additionally writes the per-artifact wall-clock
//! numbers (the same data as the stderr lines) as a JSON document, for
//! machine consumption by CI perf tracking.

use std::time::Instant;
use wavelan_bench::{run_artifact, ARTIFACTS};
use wavelan_core::{Executor, Scale};

/// One timed artifact, for the `--timing-json` report.
struct Timing {
    artifact: String,
    seconds: f64,
    packets: u64,
}

/// Renders the timing report as JSON. Hand-rolled: artifact names are
/// `[a-z0-9-]` so no escaping is needed, and the bench crate deliberately
/// takes no serde dependency.
fn timing_json(
    scale: Scale,
    seed: u64,
    jobs: usize,
    timings: &[Timing],
    total_seconds: f64,
    total_packets: u64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n").to_lowercase());
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"artifacts\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"artifact\": \"{}\", \"seconds\": {:.6}, \"packets\": {}, \"pkt_per_sec\": {:.1}}}{comma}\n",
            t.artifact,
            t.seconds,
            t.packets,
            t.packets as f64 / t.seconds.max(1e-9)
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"total\": {{\"seconds\": {:.6}, \"packets\": {}, \"pkt_per_sec\": {:.1}}}\n",
        total_seconds,
        total_packets,
        total_packets as f64 / total_seconds.max(1e-9)
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Reduced;
    let mut seed = 1996u64;
    let mut jobs = 0usize;
    let mut timing_json_path: Option<String> = None;
    let mut artifacts: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("reduced") => Scale::Reduced,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                })
            }
            "--jobs" => {
                jobs = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a number (0 = one per core)");
                    std::process::exit(2);
                })
            }
            "--timing-json" => {
                timing_json_path = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--timing-json needs a path");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!(
                    "repro [--scale smoke|reduced|paper] [--seed N] [--jobs N] \
                     [--timing-json PATH] [artifact ...]\n\
                     artifacts: {}",
                    ARTIFACTS.join(" ")
                );
                return;
            }
            name => artifacts.push(name.to_string()),
        }
    }
    if artifacts.is_empty() {
        artifacts = ARTIFACTS.iter().map(|s| s.to_string()).collect();
    }

    let exec = Executor::new(jobs);
    eprintln!("[executor: {} worker(s)]", exec.jobs());
    println!(
        "# Reproduction of Eckhardt & Steenkiste, SIGCOMM '96 (scale {scale:?}, seed {seed})\n"
    );
    let total_start = Instant::now();
    let mut total_packets = 0u64;
    let mut unknown = 0usize;
    let mut timings: Vec<Timing> = Vec::new();
    for artifact in &artifacts {
        let start = Instant::now();
        let Some(run) = run_artifact(artifact, scale, seed, &exec) else {
            eprintln!("unknown artifact {artifact}");
            unknown += 1;
            continue;
        };
        let elapsed = start.elapsed().as_secs_f64();
        println!("{}", run.text);
        // Timing goes to stderr: stdout stays bit-identical across runs and
        // worker counts (the golden regression diffs it verbatim).
        eprintln!(
            "[{artifact}: {:.2}s, {} packets, {:.0} pkt/s]",
            elapsed,
            run.packets,
            run.packets as f64 / elapsed.max(1e-9)
        );
        total_packets += run.packets;
        timings.push(Timing {
            artifact: artifact.clone(),
            seconds: elapsed,
            packets: run.packets,
        });
    }
    let total = total_start.elapsed().as_secs_f64();
    eprintln!(
        "[total: {:.2}s, {} packets, {:.0} pkt/s]",
        total,
        total_packets,
        total_packets as f64 / total.max(1e-9)
    );
    if let Some(path) = timing_json_path {
        let json = timing_json(scale, seed, exec.jobs(), &timings, total, total_packets);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("[timing report written to {path}]");
    }
    if unknown > 0 {
        std::process::exit(2);
    }
}
