//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale smoke|reduced|paper] [--seed N] [artifact ...]
//! ```
//!
//! With no artifact arguments, everything is regenerated in paper order.
//! Artifacts: `table2 figure1 table3 figure2 figure3 table4 table5-7 table8-9
//! table10 table11-13 table14 fec`.

use std::time::Instant;
use wavelan_core::experiments::{
    adaptive_fec, body, competing, harq, hidden_terminal, in_room, multiroom, narrowband,
    path_loss, quality_threshold, related_work, signal_vs_error, ss_phone, tdma, threshold, walls,
};
use wavelan_core::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Reduced;
    let mut seed = 1996u64;
    let mut artifacts: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("reduced") => Scale::Reduced,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "repro [--scale smoke|reduced|paper] [--seed N] [artifact ...]\n\
                     artifacts: table2 figure1 table3 figure2 figure3 table4 table5-7 \
                     table8-9 table10 table11-13 table14 fec harq related-work tdma quality-threshold roaming hidden-terminal"
                );
                return;
            }
            name => artifacts.push(name.to_string()),
        }
    }
    if artifacts.is_empty() {
        artifacts = [
            "table2",
            "figure1",
            "table3",
            "figure2",
            "figure3",
            "table4",
            "table5-7",
            "table8-9",
            "table10",
            "table11-13",
            "table14",
            "fec",
            "harq",
            "related-work",
            "tdma",
            "quality-threshold",
            "roaming",
            "hidden-terminal",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    println!(
        "# Reproduction of Eckhardt & Steenkiste, SIGCOMM '96 (scale {scale:?}, seed {seed})\n"
    );
    for artifact in &artifacts {
        let start = Instant::now();
        let output = match artifact.as_str() {
            "table2" => in_room::run(scale, seed).render(),
            "figure1" => path_loss::run(&[], scale.packets(1_440), seed).render(),
            "table3" => signal_vs_error::run(scale, seed).render_table3(),
            "figure2" => signal_vs_error::run(scale, seed).render_figure2(),
            "figure3" => threshold::run(&[], scale.packets(1_440), seed).render(),
            "table4" => walls::run(scale, seed).render(),
            "table5-7" | "table5" | "table6" | "table7" => multiroom::run(scale, seed).render(),
            "table8-9" | "table8" | "table9" => body::run(scale, seed).render(),
            "table10" => narrowband::run(scale, seed).render(),
            "table11-13" | "table11" | "table12" | "table13" => ss_phone::run(scale, seed).render(),
            "table14" => competing::run(scale, seed).render(),
            "fec" => adaptive_fec::run(scale, seed).render(),
            "harq" => harq::run(scale, seed).render(),
            "related-work" => related_work::run(scale.packets(1_440).min(800), seed).render(),
            "tdma" => tdma::run(8, 500, seed).render(),
            "quality-threshold" => quality_threshold::run(scale, seed).render(),
            "hidden-terminal" => {
                hidden_terminal::run(scale.packets(1_440).min(1_000), seed).render()
            }
            "roaming" => wavelan_cell::roaming::walk(
                wavelan_cell::roaming::TwoCells {
                    separation_ft: 200.0,
                    threshold: 12,
                },
                20.0,
                180.0,
                17,
                2_000,
                seed,
            )
            .render(),
            other => {
                eprintln!("unknown artifact {other}");
                continue;
            }
        };
        println!("{output}");
        println!("[{artifact}: {:.1}s]\n", start.elapsed().as_secs_f64());
    }
}
