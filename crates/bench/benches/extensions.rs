//! Benchmarks for the future-work subsystems: hybrid ARQ, the TDMA
//! scheduler, Gilbert–Elliott generation/fitting, and trace persistence.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wavelan_fec::harq::{run_harq, HarqSender};
use wavelan_mac::tdma::TdmaScheduler;
use wavelan_net::testpkt::Endpoint;
use wavelan_phy::gilbert::GilbertElliott;
use wavelan_sim::runner::attach_tx_count;
use wavelan_sim::tracefile::{read_trace, write_trace};
use wavelan_sim::{Point, ScenarioBuilder, StationConfig};

fn harq(c: &mut Criterion) {
    let mut g = c.benchmark_group("harq");
    g.sample_size(10);
    let payload: Vec<u8> = (0..256u16).map(|i| i as u8).collect();
    g.bench_function("sender_increments", |b| {
        b.iter(|| {
            let mut s = HarqSender::new(&payload);
            (0..4).map(|_| s.next_increment().len()).sum::<usize>()
        })
    });
    g.bench_function("full_protocol_clean_channel", |b| {
        b.iter(|| run_harq(&payload, 4, |bit| if bit == 1 { 1.0 } else { -1.0 }))
    });
    g.bench_function("full_protocol_2pct_bsc", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            run_harq(&payload, 8, |bit| {
                let tx = if bit == 1 { 1.0 } else { -1.0 };
                if rand::Rng::gen::<f64>(&mut rng) < 0.02 {
                    -tx
                } else {
                    tx
                }
            })
        })
    });
    g.finish();
}

fn tdma(c: &mut Criterion) {
    let mut g = c.benchmark_group("tdma");
    g.throughput(Throughput::Elements(1));
    g.bench_function("schedule_16_stations", |b| {
        let mut s = TdmaScheduler::new(16, 33);
        for i in 0..16 {
            s.reserve(i, (i as u64 + 1) * 3);
        }
        b.iter(|| s.schedule())
    });
    g.finish();
}

fn gilbert(c: &mut Criterion) {
    let mut g = c.benchmark_group("gilbert");
    let ch = GilbertElliott::new(2e-5, 0.02, 1e-6, 0.3);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("generate_100k_bits", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| ch.generate(100_000, &mut rng))
    });
    let mut rng = StdRng::seed_from_u64(3);
    let errors = ch.generate(500_000, &mut rng);
    g.bench_function("fit_500k_bits", |b| {
        b.iter(|| GilbertElliott::fit(&errors, 200))
    });
    g.finish();
}

fn tracefile(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracefile");
    g.sample_size(10);
    // A real 2,000-packet trace.
    let mut b = ScenarioBuilder::new(4);
    let rx = b.station(StationConfig::receiver(
        Endpoint::station(1),
        Point::feet(0.0, 0.0),
    ));
    let tx = b.station(StationConfig::sender(
        Endpoint::station(2),
        Point::feet(7.0, 0.0),
        rx,
    ));
    let scenario = b.build();
    let mut result = scenario.run(tx, 2_000);
    attach_tx_count(&mut result, rx, tx);
    let trace = result.trace(rx).clone();
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).unwrap();
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("write_2000_packets", |bch| {
        bch.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            write_trace(&trace, &mut out).unwrap();
            out.len()
        })
    });
    g.bench_function("read_2000_packets", |bch| {
        bch.iter(|| read_trace(&buf[..]).unwrap().records.len())
    });
    g.finish();
}

criterion_group!(benches, harq, tdma, gilbert, tracefile);
criterion_main!(benches);
