//! Component benchmarks: how fast are the substrates the experiments stand on?
//!
//! Groups:
//! * `framing` — CRC-32, internet checksum, full test-frame build/parse,
//! * `modem` — DQPSK modulation, Barker spreading/despreading (chip path),
//! * `fec` — convolutional encode, Viterbi decode (hard/soft), RCPC rates,
//! * `link` — the closed-form per-packet reception pipeline,
//! * `sim` — end-to-end simulated packets per second through the event loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavelan_fec::convolutional::{bytes_to_bits, ConvolutionalEncoder};
use wavelan_fec::rcpc::{CodeRate, RcpcCodec};
use wavelan_fec::ViterbiDecoder;
use wavelan_net::checksum::internet_checksum;
use wavelan_net::crc32::crc32;
use wavelan_net::testpkt::{Endpoint, TestPacket};
use wavelan_net::EthernetFrame;
use wavelan_phy::interference::{DutyCycle, InterferenceKind, Interferer};
use wavelan_phy::link::LinkModel;
use wavelan_phy::modulation::{DqpskDemodulator, DqpskModulator};
use wavelan_phy::spreading::SpreadingCode;
use wavelan_sim::runner::attach_tx_count;
use wavelan_sim::{Point, ScenarioBuilder, StationConfig};

fn framing(c: &mut Criterion) {
    let mut g = c.benchmark_group("framing");
    let frame = TestPacket { seq: 7 }.build_frame(Endpoint::station(1), Endpoint::station(2));
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("crc32_1070B", |b| {
        b.iter(|| crc32(std::hint::black_box(&frame)))
    });
    g.bench_function("checksum_1070B", |b| {
        b.iter(|| internet_checksum(std::hint::black_box(&frame)))
    });
    g.bench_function("build_test_frame", |b| {
        b.iter(|| TestPacket { seq: 9 }.build_frame(Endpoint::station(1), Endpoint::station(2)))
    });
    g.bench_function("parse_test_frame", |b| {
        b.iter(|| EthernetFrame::parse(std::hint::black_box(&frame)).unwrap())
    });
    g.finish();
}

fn modem(c: &mut Criterion) {
    let mut g = c.benchmark_group("modem");
    let data = vec![0xA5u8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("dqpsk_modulate_1KiB", |b| {
        b.iter(|| DqpskModulator::new().modulate_bytes(std::hint::black_box(&data)))
    });
    let symbols = DqpskModulator::new().modulate_bytes(&data);
    g.bench_function("dqpsk_demodulate_1KiB", |b| {
        b.iter(|| DqpskDemodulator::new().demodulate_bytes(std::hint::black_box(&symbols)))
    });
    let code = SpreadingCode::barker11();
    g.bench_function("barker_spread_1KiB", |b| {
        b.iter(|| code.spread(std::hint::black_box(&symbols)))
    });
    let chips = code.spread(&symbols);
    g.bench_function("barker_despread_1KiB", |b| {
        b.iter(|| code.despread(std::hint::black_box(&chips)))
    });
    g.finish();
}

fn fec(c: &mut Criterion) {
    let mut g = c.benchmark_group("fec");
    let payload = vec![0x5Au8; 256];
    let bits = bytes_to_bits(&payload);
    g.throughput(Throughput::Bytes(256));
    g.bench_function("conv_encode_256B", |b| {
        b.iter(|| ConvolutionalEncoder::new().encode_terminated(std::hint::black_box(&bits)))
    });
    let coded = ConvolutionalEncoder::new().encode_terminated(&bits);
    let dec = ViterbiDecoder::new();
    g.bench_function("viterbi_hard_256B", |b| {
        b.iter(|| dec.decode_hard(std::hint::black_box(&coded)))
    });
    let soft = wavelan_fec::viterbi::hard_to_soft(&coded);
    g.bench_function("viterbi_soft_256B", |b| {
        b.iter(|| dec.decode_terminated(std::hint::black_box(&soft)))
    });
    let codec = RcpcCodec::new();
    for rate in CodeRate::ALL {
        let tx = codec.encode(&payload, rate);
        g.bench_with_input(
            BenchmarkId::new("rcpc_decode", format!("{rate:?}")),
            &tx,
            |b, tx| b.iter(|| codec.decode_hard(tx, payload.len(), rate)),
        );
    }
    g.finish();
}

fn link(c: &mut Criterion) {
    let mut g = c.benchmark_group("link");
    let model = LinkModel::default();
    let phone = Interferer {
        kind: InterferenceKind::WidebandInBand,
        power_dbm: -60.0,
        duty: DutyCycle::Burst {
            period_bits: 8_000,
            on_bits: 4_000,
        },
        burst_sigma_db: 2.0,
    };
    g.throughput(Throughput::Elements(1));
    g.bench_function("receive_clean", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| model.receive(-48.0, &[], 8_576, &mut rng))
    });
    g.bench_function("receive_noisy_edge", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| model.receive(-83.0, &[], 8_576, &mut rng))
    });
    g.bench_function("receive_with_interference", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let em = phone.emissions(8_576, &mut rng);
            model.receive(-53.0, &em, 8_576, &mut rng)
        })
    });
    g.finish();
}

fn sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2_000));
    g.bench_function("two_station_trial_2000pkt", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut builder = ScenarioBuilder::new(seed);
            let rx = builder.station(StationConfig::receiver(
                Endpoint::station(1),
                Point::feet(0.0, 0.0),
            ));
            let tx = builder.station(StationConfig::sender(
                Endpoint::station(2),
                Point::feet(7.0, 0.0),
                rx,
            ));
            let scenario = builder.build();
            let mut result = scenario.run(tx, 2_000);
            attach_tx_count(&mut result, rx, tx);
            result.trace(rx).len()
        })
    });
    g.finish();
}

fn analysis_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    // Build a trace once, measure the pipeline.
    let mut builder = ScenarioBuilder::new(11);
    let rx = builder.station(StationConfig::receiver(
        Endpoint::station(1),
        Point::feet(0.0, 0.0),
    ));
    let tx = builder.station(StationConfig::sender(
        Endpoint::station(2),
        Point::feet(280.0, 0.0),
        rx,
    ));
    let scenario = builder.build();
    let mut result = scenario.run(tx, 2_000);
    attach_tx_count(&mut result, rx, tx);
    let trace = result.trace(rx).clone();
    let expected = wavelan_analysis::ExpectedSeries {
        src: Endpoint::station(2),
        dst: Endpoint::station(1),
        network_id: wavelan_mac::network_id::NetworkId::TESTBED,
    };
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("classify_damaged_trace", |b| {
        b.iter(|| wavelan_analysis::analyze(std::hint::black_box(&trace), &expected))
    });
    g.finish();
    // keep rng linkage for potential extension
    let _ = StdRng::seed_from_u64(0).gen::<u8>();
}

criterion_group!(benches, framing, modem, fec, link, sim, analysis_bench);
criterion_main!(benches);
