//! Ablation benches for the design choices DESIGN.md calls out. These are
//! *measurement* benches: each one runs two variants of a mechanism and
//! asserts (via printed summary) the direction of the effect while timing it.
//!
//! * `dsss_gain` — narrowband interference with and without the despreading
//!   suppression (the Table 10 mechanism),
//! * `diversity` — dual-antenna selection vs a single branch at the body
//!   operating point (the deep-fade tail),
//! * `viterbi_decisions` — hard vs soft decoding at equal channel quality,
//! * `interleaving` — burst channel with and without the block interleaver.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavelan_fec::convolutional::ConvolutionalEncoder;
use wavelan_fec::{BlockInterleaver, ViterbiDecoder};
use wavelan_phy::antenna::DiversityReceiver;
use wavelan_phy::interference::{Emission, InterferenceKind};
use wavelan_phy::link::{LinkModel, PacketOutcome};

/// Counts damaged/lost packets over `n` receives.
fn run_link(
    model: &LinkModel,
    signal: f64,
    emissions: &[Emission],
    n: u32,
    seed: u64,
) -> (u32, u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut bad, mut lost) = (0, 0);
    for _ in 0..n {
        match model.receive(signal, emissions, 8_576, &mut rng) {
            PacketOutcome::Lost(_) => lost += 1,
            PacketOutcome::Received(r) => {
                if !r.error_bits.is_empty() || r.truncated_at_bit.is_some() {
                    bad += 1;
                }
            }
        }
    }
    (bad, lost)
}

fn dsss_gain(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dsss");
    g.sample_size(10);
    let model = LinkModel::default();
    // The same narrowband power, treated as narrowband (suppressed by the
    // correlator) vs as if it were wideband (no suppression).
    let nb = [Emission {
        start_bit: 0,
        end_bit: 8_576,
        raw_dbm: -52.0,
        kind: InterferenceKind::NarrowbandInBand,
    }];
    let wb = [Emission {
        kind: InterferenceKind::WidebandInBand,
        ..nb[0]
    }];
    let (bad_nb, lost_nb) = run_link(&model, -60.0, &nb, 4_000, 1);
    let (bad_wb, lost_wb) = run_link(&model, -60.0, &wb, 4_000, 1);
    println!(
        "\n[dsss_gain] same −52 dBm interferer vs a −60 dBm signal: narrowband \
         (correlator-suppressed) {bad_nb} damaged/{lost_nb} lost; wideband \
         (barely suppressed) {bad_wb} damaged/{lost_wb} lost"
    );
    assert!(bad_nb + lost_nb < (bad_wb + lost_wb) / 5 + 5);
    g.bench_function("narrowband_suppressed", |b| {
        b.iter(|| run_link(&model, -60.0, &nb, 200, 2))
    });
    g.bench_function("wideband_unsuppressed", |b| {
        b.iter(|| run_link(&model, -60.0, &wb, 200, 2))
    });
    g.finish();
}

fn diversity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_diversity");
    g.sample_size(10);
    // Deep-fade tail at the body operating point, selection vs single branch.
    let rx = DiversityReceiver::default();
    let n = 200_000;
    let mut rng = StdRng::seed_from_u64(3);
    let deep = |fade: f64| fade < -5.2; // the error-region entry at level ~6.7
    let div_deep = (0..n).filter(|_| deep(rx.select(&mut rng).1)).count();
    let single_deep = (0..n).filter(|_| deep(rx.single_branch(&mut rng))).count();
    println!(
        "\n[diversity] deep fades per {n}: selection {div_deep}, single antenna {single_deep} \
         ({}x reduction)",
        single_deep.max(1) / div_deep.max(1)
    );
    assert!(div_deep * 5 < single_deep);
    g.bench_function("selection", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| rx.select(&mut rng))
    });
    g.bench_function("single_branch", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| rx.single_branch(&mut rng))
    });
    g.finish();
}

fn viterbi_decisions(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_viterbi");
    g.sample_size(10);
    let dec = ViterbiDecoder::new();
    let mut rng = StdRng::seed_from_u64(5);
    let bits: Vec<u8> = (0..800).map(|_| rng.gen_range(0..2)).collect();
    let coded = ConvolutionalEncoder::new().encode_terminated(&bits);
    // A soft channel at low SNR.
    let soft: Vec<f64> = coded
        .iter()
        .map(|&b| {
            let tx = if b == 1 { 1.0 } else { -1.0 };
            tx + wavelan_phy::baseband::gaussian(&mut rng, 0.8)
        })
        .collect();
    let hard: Vec<u8> = soft.iter().map(|&s| u8::from(s > 0.0)).collect();
    let soft_errs: usize = dec
        .decode_terminated(&soft)
        .iter()
        .zip(&bits)
        .filter(|(a, b)| a != b)
        .count();
    let hard_errs: usize = dec
        .decode_hard(&hard)
        .iter()
        .zip(&bits)
        .filter(|(a, b)| a != b)
        .count();
    println!("\n[viterbi] residual errors at equal channel: soft {soft_errs}, hard {hard_errs}");
    assert!(soft_errs <= hard_errs);
    g.bench_function("soft", |b| {
        b.iter(|| dec.decode_terminated(std::hint::black_box(&soft)))
    });
    g.bench_function("hard", |b| {
        b.iter(|| dec.decode_hard(std::hint::black_box(&hard)))
    });
    g.finish();
}

fn interleaving(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_interleaving");
    g.sample_size(10);
    let dec = ViterbiDecoder::new();
    let il = BlockInterleaver::new(26, 62); // 26×62 = 1612 = the coded length exactly
    let mut rng = StdRng::seed_from_u64(6);
    let bits: Vec<u8> = (0..800).map(|_| rng.gen_range(0..2)).collect();
    let coded = ConvolutionalEncoder::new().encode_terminated(&bits);
    let burst = |data: &[u8], at: usize| {
        let mut d = data.to_vec();
        for s in d.iter_mut().skip(at).take(20) {
            *s ^= 1;
        }
        d
    };
    let mut plain_fail = 0;
    let mut il_fail = 0;
    for at in (100..1500).step_by(50) {
        if dec.decode_hard(&burst(&coded, at)) != bits {
            plain_fail += 1;
        }
        let rx_bits = il.deinterleave(&burst(&il.interleave(&coded), at));
        if dec.decode_hard(&rx_bits) != bits {
            il_fail += 1;
        }
    }
    println!(
        "\n[interleaving] 20-bit bursts: {plain_fail} decode failures plain, {il_fail} interleaved"
    );
    assert!(il_fail < plain_fail);
    g.bench_function("with_interleaver", |b| {
        b.iter(|| {
            let rx_bits = il.deinterleave(&burst(&il.interleave(&coded), 500));
            dec.decode_hard(&rx_bits)
        })
    });
    g.bench_function("without_interleaver", |b| {
        b.iter(|| dec.decode_hard(&burst(&coded, 500)))
    });
    g.finish();
}

fn capture_effect(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_capture");
    g.sample_size(10);
    // The hidden-terminal experiment with capture on vs ablated: assert the
    // direction of the effect, then time the paired run.
    let on = wavelan_core::experiments::hidden_terminal::run(300, 9);
    println!(
        "\n[capture] hidden-terminal delivery: capture on {:.0}%, ablated {:.0}%",
        on.with_capture.delivery() * 100.0,
        on.without_capture.delivery() * 100.0
    );
    assert!(on.with_capture.delivery() > on.without_capture.delivery() + 0.25);
    g.bench_function("hidden_terminal_pair", |b| {
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            wavelan_core::experiments::hidden_terminal::run(120, seed)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    dsss_gain,
    diversity,
    viterbi_decisions,
    interleaving,
    capture_effect
);
criterion_main!(benches);
