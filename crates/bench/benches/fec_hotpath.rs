//! FEC decode hot-path benchmarks: the fixed-point bit-sliced Viterbi
//! kernels against the retained f64 reference, the full RCPC codec path
//! the experiment drivers run, and a complete IR-HARQ exchange.
//!
//! The acceptance bar for this PR is ≥20x packets/sec on the `fec` and
//! `harq` artifacts; these benches isolate the layers that deliver it so
//! a kernel regression is visible without re-running whole artifacts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavelan_fec::convolutional::{bytes_to_bits, ConvolutionalEncoder};
use wavelan_fec::harq::run_harq_encoded_with;
use wavelan_fec::rcpc::{CodeRate, RcpcCodec};
use wavelan_fec::{BlockInterleaver, FecScratch, ViterbiDecoder};

/// Payload size of the heavy experiment frames (adaptive-FEC replay, the
/// larger HARQ shootout arm).
const PAYLOAD_BYTES: usize = 1_024;

/// A terminated mother codeword for `PAYLOAD_BYTES` of patterned payload,
/// plus the ±1 integer symbols a hard-decision receive produces (with a
/// sprinkling of bit errors so the decode does real work).
fn mother_qsyms(seed: u64) -> Vec<i16> {
    let payload: Vec<u8> = (0..PAYLOAD_BYTES).map(|i| (i * 29) as u8).collect();
    let mother = ConvolutionalEncoder::new().encode_terminated(&bytes_to_bits(&payload));
    let mut rng = StdRng::seed_from_u64(seed);
    mother
        .iter()
        .map(|&b| {
            let tx = if b == 1 { 1i16 } else { -1i16 };
            if rng.gen::<f64>() < 0.02 {
                -tx
            } else {
                tx
            }
        })
        .collect()
}

/// Per-kernel decode of one 1,024-byte frame: the number that moved ~100x
/// in this PR. Kernels the host lacks are silently skipped.
fn viterbi_kernels(c: &mut Criterion) {
    let qsyms = mother_qsyms(7);
    let soft: Vec<f64> = qsyms.iter().map(|&q| f64::from(q)).collect();
    let mut g = c.benchmark_group("fec_hotpath/viterbi");
    g.throughput(Throughput::Elements(1));
    for name in ["scalar", "avx2", "avx512"] {
        let Some(dec) = ViterbiDecoder::with_kernel(name) else {
            continue;
        };
        g.bench_function(name, |b| {
            let mut scratch = FecScratch::new();
            let mut out = Vec::new();
            b.iter(|| {
                dec.decode_quantized_with(std::hint::black_box(&qsyms), &mut scratch, &mut out)
            })
        });
    }
    g.bench_function("f64_reference", |b| {
        let dec = ViterbiDecoder::new();
        b.iter(|| dec.decode_terminated_reference(std::hint::black_box(&soft)))
    });
    g.finish();
}

/// The adaptive-FEC replay path: deinterleave + depuncture + decode of a
/// damaged frame at the strongest and weakest RCPC rates.
fn rcpc_replay(c: &mut Criterion) {
    let codec = RcpcCodec::new();
    let interleaver = BlockInterleaver::new(64, 128);
    let payload: Vec<u8> = (0..PAYLOAD_BYTES).map(|i| (i * 29) as u8).collect();
    let mut g = c.benchmark_group("fec_hotpath/rcpc");
    g.throughput(Throughput::Elements(1));
    for (label, rate) in [("r1_2", CodeRate::R1_2), ("r8_9", CodeRate::R8_9)] {
        let mut wire = interleaver.interleave(&codec.encode(&payload, rate));
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let i = rng.gen_range(0..wire.len());
            wire[i] ^= 1;
        }
        g.bench_function(label, |b| {
            let mut scratch = FecScratch::new();
            let mut received = Vec::new();
            let mut decoded = Vec::new();
            b.iter(|| {
                interleaver.deinterleave_into(std::hint::black_box(&wire), &mut received);
                codec.decode_hard_with(&received, PAYLOAD_BYTES, rate, &mut scratch, &mut decoded);
            })
        });
    }
    g.finish();
}

/// A full IR-HARQ exchange (encoded-mother entry point, as the shootout
/// driver calls it) over a 2% bit-flip channel.
fn harq_exchange(c: &mut Criterion) {
    let payload: Vec<u8> = (0..PAYLOAD_BYTES).map(|i| (i * 29) as u8).collect();
    let mother = ConvolutionalEncoder::new().encode_terminated(&bytes_to_bits(&payload));
    let mut g = c.benchmark_group("fec_hotpath/harq");
    g.throughput(Throughput::Elements(1));
    g.bench_function("exchange_p02", |b| {
        let mut scratch = FecScratch::new();
        let mut rng = StdRng::seed_from_u64(13);
        b.iter(|| {
            run_harq_encoded_with(
                &payload,
                std::hint::black_box(&mother),
                12,
                |bit| {
                    let tx = if bit == 1 { 1.0 } else { -1.0 };
                    if rng.gen::<f64>() < 0.02 {
                        -tx
                    } else {
                        tx
                    }
                },
                &mut scratch,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, viterbi_kernels, rcpc_replay, harq_exchange);
criterion_main!(benches);
