//! One bench per paper artifact: times the regeneration of every table and
//! figure at smoke scale. (Full-scale regeneration is the `repro` binary:
//! `cargo run -p wavelan-bench --release --bin repro -- --scale paper`.)

use criterion::{criterion_group, criterion_main, Criterion};
use wavelan_core::experiments::{
    adaptive_fec, body, competing, in_room, multiroom, narrowband, path_loss, signal_vs_error,
    ss_phone, threshold, walls,
};
use wavelan_core::Scale;

fn paper_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    let mut seed = 0u64;
    let mut next = move || {
        seed += 1;
        seed
    };
    g.bench_function("table2_in_room", |b| {
        b.iter(|| in_room::run(Scale::Smoke, next()))
    });
    g.bench_function("figure1_path_loss", |b| {
        b.iter(|| path_loss::run(&[], 120, next()))
    });
    g.bench_function("table3_figure2_signal_vs_error", |b| {
        b.iter(|| signal_vs_error::run(Scale::Smoke, next()))
    });
    g.bench_function("figure3_threshold", |b| {
        b.iter(|| threshold::run(&[], 250, next()))
    });
    g.bench_function("table4_walls", |b| {
        b.iter(|| walls::run(Scale::Smoke, next()))
    });
    g.bench_function("tables5_7_multiroom", |b| {
        b.iter(|| multiroom::run(Scale::Smoke, next()))
    });
    g.bench_function("tables8_9_body", |b| {
        b.iter(|| body::run(Scale::Smoke, next()))
    });
    g.bench_function("table10_narrowband", |b| {
        b.iter(|| narrowband::run(Scale::Smoke, next()))
    });
    g.bench_function("tables11_13_ss_phone", |b| {
        b.iter(|| ss_phone::run(Scale::Smoke, next()))
    });
    g.bench_function("table14_competing", |b| {
        b.iter(|| competing::run(Scale::Smoke, next()))
    });
    g.bench_function("section8_adaptive_fec", |b| {
        b.iter(|| adaptive_fec::run(Scale::Smoke, next()))
    });
    g.finish();
}

criterion_group!(benches, paper_tables);
criterion_main!(benches);
