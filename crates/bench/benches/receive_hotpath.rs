//! Reception hot-path benchmarks: the allocating reference pipeline
//! (`LinkModel::receive`) against the scratch-backed hot path
//! (`LinkModel::receive_with`), over the channel mixes the experiments
//! actually run, plus the segment-timeline construction in isolation.
//!
//! Every interference case uses a *stationary* emission set (the same
//! timeline every packet), which is what the experiment trials produce for
//! fixed interferer placements — and exactly the case the one-entry
//! timeline cache in `RxScratch` is built for. The acceptance bar for this
//! PR is ≥2× packets/sec on the stationary-interference case.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wavelan_phy::interference::{Emission, InterferenceKind};
use wavelan_phy::link::{segment_timeline, LinkModel, PacketOutcome};
use wavelan_phy::RxScratch;

/// 1,070-byte test packet, as everywhere else in the reproduction.
const LEN: u64 = 8_560;

/// A stationary SS-phone-style jam: wideband in-band bursts every 1,400
/// bits, clear of the preamble so packets mostly survive with bit errors —
/// the heaviest segment walk the experiments produce.
fn ss_phone_jam() -> Vec<Emission> {
    let mut em = Vec::new();
    let mut start = 400u64;
    while start < LEN {
        em.push(Emission {
            start_bit: start,
            end_bit: (start + 700).min(LEN),
            raw_dbm: -72.0,
            kind: InterferenceKind::WidebandInBand,
        });
        start += 1_400;
    }
    em
}

/// A narrowband FM carrier parked on the band for the whole packet.
fn narrowband() -> Vec<Emission> {
    vec![Emission {
        start_bit: 0,
        end_bit: LEN,
        raw_dbm: -35.0,
        kind: InterferenceKind::NarrowbandInBand,
    }]
}

/// One hot-path reception, recycling the error buffer so the steady state
/// stays allocation-free (the same contract the sim runner follows).
fn receive_hot(
    model: &LinkModel,
    signal_dbm: f64,
    em: &[Emission],
    rng: &mut StdRng,
    scratch: &mut RxScratch,
) -> PacketOutcome {
    let mut outcome = model.receive_with(signal_dbm, em, LEN, rng, scratch);
    if let PacketOutcome::Received(ref mut r) = outcome {
        scratch.recycle_error_buf(std::mem::take(&mut r.error_bits));
    }
    outcome
}

fn receive_cases(c: &mut Criterion) {
    let model = LinkModel::default();
    let cases: [(&str, f64, Vec<Emission>); 3] = [
        ("clean", -48.0, Vec::new()),
        ("narrowband", -48.0, narrowband()),
        ("ss_phone_jam", -62.0, ss_phone_jam()),
    ];
    for (name, signal_dbm, em) in &cases {
        let mut g = c.benchmark_group(&format!("receive_hotpath/{name}"));
        g.throughput(Throughput::Elements(1));
        g.bench_function("uncached", |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| model.receive(*signal_dbm, std::hint::black_box(em), LEN, &mut rng))
        });
        g.bench_function("scratch", |b| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut scratch = RxScratch::new();
            b.iter(|| {
                receive_hot(
                    &model,
                    *signal_dbm,
                    std::hint::black_box(em),
                    &mut rng,
                    &mut scratch,
                )
            })
        });
        g.finish();
    }
}

fn timeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment_timeline");
    let em = ss_phone_jam();
    g.throughput(Throughput::Elements(1));
    g.bench_function("ss_phone_jam", |b| {
        b.iter(|| segment_timeline(std::hint::black_box(&em), LEN))
    });
    g.finish();
}

criterion_group!(benches, receive_cases, timeline);
criterion_main!(benches);
