//! Pins the `repro` CLI's exit-code contract.
//!
//! The codes are part of the scripting interface (`ci.sh` and the serve
//! smoke test branch on them): 0 success, 1 runtime failure (validation
//! fail, HTTP non-200), 2 usage error. Malformed invocations — unknown
//! flags, unparseable `--seeds`/`--jobs` values, missing flag arguments —
//! must all land on 2 with a usage message, never start a simulation, and
//! never panic.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn list_exits_zero() {
    let out = repro(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("table2"));
    assert!(stdout.contains("hidden-terminal"));
}

#[test]
fn help_exits_zero() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn unknown_artifact_exits_two() {
    let out = repro(&["--scale", "smoke", "no-such-artifact"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown artifact"));
    assert!(err.contains("valid artifacts"), "lists the valid names");
}

#[test]
fn unknown_flag_exits_two_with_usage() {
    for args in [
        &["--frobnicate"][..],
        &["--scale", "smoke", "--frobnicate", "tdma"][..],
        &["-x"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        let err = stderr(&out);
        assert!(err.contains("unknown flag"), "args: {args:?}");
        assert!(err.contains("usage:"), "args: {args:?}");
    }
}

#[test]
fn malformed_seeds_exits_two_with_usage() {
    for bad in ["abc", "0", "-3", "1.5", ""] {
        let out = repro(&["--validate", "--seeds", bad]);
        assert_eq!(out.status.code(), Some(2), "--seeds {bad:?}");
        assert!(stderr(&out).contains("usage:"), "--seeds {bad:?}");
    }
    // Missing value entirely.
    let out = repro(&["--validate", "--seeds"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn malformed_jobs_exits_two_with_usage() {
    for bad in ["abc", "-1", "2.5"] {
        let out = repro(&["--jobs", bad, "tdma"]);
        assert_eq!(out.status.code(), Some(2), "--jobs {bad:?}");
        assert!(stderr(&out).contains("usage:"), "--jobs {bad:?}");
    }
}

#[test]
fn malformed_scale_and_format_exit_two() {
    assert_eq!(repro(&["--scale", "huge"]).status.code(), Some(2));
    assert_eq!(repro(&["--format", "xml"]).status.code(), Some(2));
    assert_eq!(repro(&["--scale"]).status.code(), Some(2));
}

#[test]
fn validate_rejects_artifact_arguments() {
    let out = repro(&["--validate", "table2"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn check_json_exit_codes() {
    let dir = std::env::temp_dir();
    let good = dir.join("repro_cli_good.json");
    let bad = dir.join("repro_cli_bad.json");
    std::fs::write(&good, "{\"ok\": [1, 2, 3]}\n").expect("write");
    std::fs::write(&bad, "{\"ok\": [1, 2\n").expect("write");
    assert_eq!(
        repro(&["--check-json", good.to_str().expect("utf-8")])
            .status
            .code(),
        Some(0)
    );
    assert_eq!(
        repro(&["--check-json", bad.to_str().expect("utf-8")])
            .status
            .code(),
        Some(2)
    );
    assert_eq!(
        repro(&["--check-json", "/no/such/file.json"]).status.code(),
        Some(2)
    );
    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(bad);
}

#[test]
fn http_get_requires_a_real_url() {
    // Not a URL at all → usage error (2).
    let out = repro(&["--http-get", "not-a-url"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
    // Well-formed URL, nothing listening → runtime failure (1).
    let out = repro(&["--http-get", "http://127.0.0.1:9/healthz"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn serve_rejects_unknown_flags() {
    let out = repro(&["serve", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
    let out = repro(&["serve", "--workers", "abc"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn serve_store_and_peers_flag_errors_exit_two() {
    // Flags without values.
    assert_eq!(repro(&["serve", "--store"]).status.code(), Some(2));
    assert_eq!(repro(&["serve", "--peers"]).status.code(), Some(2));
    // A peer ring the daemon is not a member of must be refused before
    // binding anything: --peers requires an explicit --addr in the list.
    let out = repro(&["serve", "--peers", "127.0.0.1:1,127.0.0.1:2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--addr"));
}

/// Pins the usage text: every subcommand and flag the scripting surface
/// depends on must be listed, so `repro --help` stays the one place the
/// whole CLI is discoverable.
#[test]
fn usage_text_lists_every_subcommand_and_flag() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let usage = String::from_utf8_lossy(&out.stdout).into_owned();
    for needle in [
        "--scale smoke|reduced|paper",
        "--seed N",
        "--jobs N",
        "--format text|json",
        "--timing-json PATH",
        "--serve-bench PATH",
        "--list",
        "--trace-out FILE",
        "--capture-bench PATH",
        "repro reanalyze FILE",
        "repro trace-info FILE",
        "--scenario NAME",
        "--validate",
        "--seeds N",
        "repro sweep --space NAME|PATH",
        "--points N",
        "repro serve",
        "--addr HOST:PORT",
        "--workers N",
        "--queue N",
        "--cache N",
        "--timeout-ms N",
        "--addr-file PATH",
        "--store DIR",
        "--peers HOST:PORT,...",
        "--http-get URL",
        "--check-json PATH",
    ] {
        assert!(usage.contains(needle), "usage must mention {needle:?}:\n{usage}");
    }
}
