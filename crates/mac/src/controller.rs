//! Receive-side behaviour of the Intel 82593 LAN controller.
//!
//! The study's receiver configuration (paper Section 4): "the kernel device
//! driver was modified to place both the Ethernet controller and the modem
//! control unit into 'promiscuous' mode and to log, for each incoming packet,
//! every bit and all available status information, even if the packet failed
//! the Ethernet CRC check. ... we enable promiscuous receive and disable
//! automatic CRC filtering at the Ethernet level."
//!
//! [`RxFilter`] models the controller's accept/reject decision under any
//! configuration — the tracing configuration above, or a normal production
//! configuration (address filter + CRC filter on), which the `cell` and MAC
//! experiments use to ask "what would a *deployed* station have seen?".

use crate::network_id::{strip_network_id, NetworkId, NetworkIdFilter};
use wavelan_net::ethernet::EthernetFrame;
use wavelan_net::{MacAddr, ParseError};

/// Why the controller rejected (or how it classified) an incoming frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxDecision {
    /// Delivered to the host.
    Accept(EthernetFrame),
    /// Rejected by the network-ID filter at the modem.
    WrongNetworkId(NetworkId),
    /// Rejected by the station-address filter (not promiscuous, not ours,
    /// not broadcast/multicast).
    WrongAddress(MacAddr),
    /// Rejected by the CRC filter.
    BadCrc,
    /// Too mangled to frame at all (shorter than the minimal headers).
    Unframeable(ParseError),
}

/// Receive-filter configuration of the controller + modem pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxFilter {
    /// This station's address (for the address filter).
    pub station: MacAddr,
    /// Accept frames regardless of destination address.
    pub promiscuous: bool,
    /// Drop frames whose FCS fails.
    pub crc_filter: bool,
    /// Modem-level network-ID filter.
    pub network_id: NetworkIdFilter,
}

impl RxFilter {
    /// The study's tracing configuration: promiscuous, CRC filter off,
    /// all network IDs accepted (so "outsider" packets are logged too).
    pub fn tracing(station: MacAddr) -> RxFilter {
        RxFilter {
            station,
            promiscuous: true,
            crc_filter: false,
            network_id: NetworkIdFilter::AcceptAll,
        }
    }

    /// A production configuration: address + CRC filtering on, locked to one
    /// network ID.
    pub fn production(station: MacAddr, id: NetworkId) -> RxFilter {
        RxFilter {
            station,
            promiscuous: false,
            crc_filter: true,
            network_id: NetworkIdFilter::Only(id),
        }
    }

    /// Runs the controller's decision procedure on the on-air bytes (network
    /// ID + Ethernet frame), exactly in hardware order: network-ID filter,
    /// framing, address recognition, CRC check.
    pub fn decide(&self, wire: &[u8]) -> RxDecision {
        let Some((id, eth_bytes)) = strip_network_id(wire) else {
            return RxDecision::Unframeable(ParseError::Truncated {
                needed: 2,
                got: wire.len(),
            });
        };
        if !self.network_id.accepts(id) {
            return RxDecision::WrongNetworkId(id);
        }
        let frame = match EthernetFrame::parse(eth_bytes) {
            Ok(f) => f,
            Err(e) => return RxDecision::Unframeable(e),
        };
        if !self.promiscuous
            && frame.dst != self.station
            && !frame.dst.is_broadcast()
            && !frame.dst.is_multicast()
        {
            return RxDecision::WrongAddress(frame.dst);
        }
        if self.crc_filter && !frame.fcs_ok {
            return RxDecision::BadCrc;
        }
        RxDecision::Accept(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network_id::wrap_with_network_id;
    use wavelan_net::ethernet::EtherType;

    fn wire_frame(dst: MacAddr, id: NetworkId, corrupt: bool) -> Vec<u8> {
        let payload = vec![0x5Au8; 64];
        let mut eth = EthernetFrame::build(dst, MacAddr::station(9), EtherType::Ipv4, &payload);
        if corrupt {
            eth[30] ^= 0x01;
        }
        wrap_with_network_id(id, &eth)
    }

    #[test]
    fn tracing_config_accepts_everything_parseable() {
        let me = MacAddr::station(1);
        let filter = RxFilter::tracing(me);
        // Wrong address, wrong network id, bad CRC: all still accepted.
        let wire = wire_frame(MacAddr::station(2), NetworkId(0x1234), true);
        match filter.decide(&wire) {
            RxDecision::Accept(f) => assert!(!f.fcs_ok),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn production_config_filters_by_address() {
        let me = MacAddr::station(1);
        let filter = RxFilter::production(me, NetworkId::TESTBED);
        let wire = wire_frame(MacAddr::station(2), NetworkId::TESTBED, false);
        assert!(matches!(filter.decide(&wire), RxDecision::WrongAddress(_)));
        // Our own address and broadcast both pass.
        let ours = wire_frame(me, NetworkId::TESTBED, false);
        assert!(matches!(filter.decide(&ours), RxDecision::Accept(_)));
        let bcast = wire_frame(MacAddr::BROADCAST, NetworkId::TESTBED, false);
        assert!(matches!(filter.decide(&bcast), RxDecision::Accept(_)));
    }

    #[test]
    fn production_config_filters_by_network_id() {
        let me = MacAddr::station(1);
        let filter = RxFilter::production(me, NetworkId::TESTBED);
        let wire = wire_frame(me, NetworkId(0x0001), false);
        assert!(matches!(
            filter.decide(&wire),
            RxDecision::WrongNetworkId(NetworkId(1))
        ));
    }

    #[test]
    fn production_config_filters_bad_crc() {
        let me = MacAddr::station(1);
        let filter = RxFilter::production(me, NetworkId::TESTBED);
        let wire = wire_frame(me, NetworkId::TESTBED, true);
        assert_eq!(filter.decide(&wire), RxDecision::BadCrc);
    }

    #[test]
    fn unframeable_garbage() {
        let filter = RxFilter::tracing(MacAddr::station(1));
        assert!(matches!(filter.decide(&[0xFF]), RxDecision::Unframeable(_)));
        assert!(matches!(
            filter.decide(&[0xCA, 0xFE, 1, 2, 3]),
            RxDecision::Unframeable(_)
        ));
    }

    #[test]
    fn corrupted_address_bypasses_filter_in_promiscuous_mode() {
        // Section 7.4's "hundreds of invalid Ethernet addresses" were only
        // observable because the tracing config is promiscuous.
        let me = MacAddr::station(1);
        let mut wire = wire_frame(me, NetworkId::TESTBED, false);
        wire[2] ^= 0xF0; // corrupt the destination address on the air
        assert!(matches!(
            RxFilter::tracing(me).decide(&wire),
            RxDecision::Accept(_)
        ));
        assert!(matches!(
            RxFilter::production(me, NetworkId::TESTBED).decide(&wire),
            RxDecision::WrongAddress(_)
        ));
    }
}
