//! The CSMA/CA transmit state machine.
//!
//! Paper Section 2: "WaveLAN CSMA/CA attempts to avoid collision losses by
//! treating a busy medium as a collision. That is, any stations which become
//! ready to transmit while the medium is busy will delay for a random
//! interval when the medium becomes free."
//!
//! The machine is driven by the discrete-event simulator: the station calls
//! [`CsmaCa::attempt`] with the current carrier-sense state whenever it wants
//! to (re)try a pending frame, and acts on the returned [`TxAction`]. Time is
//! explicit (nanoseconds), randomness comes from the caller's RNG, and the
//! machine keeps the counters the paper's Figure 3 reports ("collision rate
//! when the victim attempted to transmit").

use crate::backoff::ExponentialBackoff;
use rand::Rng;

/// Timing and retry parameters of the MAC.
#[derive(Debug, Clone, Copy)]
pub struct MacConfig {
    /// Backoff slot duration, ns.
    pub slot_time_ns: u64,
    /// Inter-frame space: idle time required before an attempt, ns.
    pub ifs_ns: u64,
    /// Backoff exponent cap.
    pub backoff_cap: u32,
    /// Attempts before a frame is dropped.
    pub max_attempts: u32,
}

impl Default for MacConfig {
    fn default() -> Self {
        // Timing in the spirit of a 2 Mb/s radio Ethernet: 50 µs slots,
        // 32 µs IFS, standard Ethernet retry policy.
        MacConfig {
            slot_time_ns: 50_000,
            ifs_ns: 32_000,
            backoff_cap: 10,
            max_attempts: 16,
        }
    }
}

/// What the station should do with its pending frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxAction {
    /// The medium is free: start transmitting now.
    Transmit,
    /// The medium was busy (a WaveLAN "collision"): retry at the given time.
    Retry {
        /// Absolute retry time, ns.
        at_ns: u64,
    },
    /// Excessive collisions: the frame is abandoned.
    Drop,
}

/// Counters exposed for the Figure 3 reproduction and MAC diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacStats {
    /// Transmission attempts (carrier-sense checks for a pending frame).
    pub attempts: u64,
    /// Attempts that found the medium busy.
    pub collisions: u64,
    /// Frames actually transmitted.
    pub transmissions: u64,
    /// Frames dropped after excessive collisions.
    pub drops: u64,
}

impl MacStats {
    /// Fraction of attempts that completed without sensing a collision.
    pub fn collision_free_fraction(&self) -> f64 {
        if self.attempts == 0 {
            return 1.0;
        }
        1.0 - self.collisions as f64 / self.attempts as f64
    }

    /// Deferrals: attempts that found the medium busy and backed off. In
    /// WaveLAN's CSMA/CA a busy medium *is* a collision (Section 2), so this
    /// is the same counter as [`MacStats::collisions`] under the name the
    /// scenario layer's `require` conditions use — a capture test whose
    /// stations mutually defer shows a high value here and a zero
    /// transmission-overlap count.
    pub fn deferrals(&self) -> u64 {
        self.collisions
    }
}

/// Per-station CSMA/CA state.
#[derive(Debug, Clone)]
pub struct CsmaCa {
    config: MacConfig,
    backoff: ExponentialBackoff,
    stats: MacStats,
}

impl CsmaCa {
    /// Creates a fresh MAC with the given configuration.
    pub fn new(config: MacConfig) -> CsmaCa {
        CsmaCa {
            backoff: ExponentialBackoff::new(config.backoff_cap, config.max_attempts),
            config,
            stats: MacStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> MacConfig {
        self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// Attempts to send the pending frame at `now_ns` given the current
    /// carrier-sense state. Busy medium counts as a collision and schedules a
    /// backoff retry; too many collisions drop the frame.
    pub fn attempt<R: Rng + ?Sized>(
        &mut self,
        now_ns: u64,
        carrier_busy: bool,
        rng: &mut R,
    ) -> TxAction {
        self.stats.attempts += 1;
        if !carrier_busy {
            self.stats.transmissions += 1;
            self.backoff.reset();
            return TxAction::Transmit;
        }
        self.stats.collisions += 1;
        match self.backoff.on_collision(rng) {
            Some(slots) => TxAction::Retry {
                at_ns: now_ns + self.config.ifs_ns + slots * self.config.slot_time_ns,
            },
            None => {
                self.stats.drops += 1;
                self.backoff.reset();
                TxAction::Drop
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn free_medium_transmits_immediately() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mac = CsmaCa::new(MacConfig::default());
        assert_eq!(mac.attempt(0, false, &mut rng), TxAction::Transmit);
        let s = mac.stats();
        assert_eq!((s.attempts, s.collisions, s.transmissions), (1, 0, 1));
    }

    #[test]
    fn busy_medium_is_a_collision_and_backs_off() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MacConfig::default();
        let mut mac = CsmaCa::new(cfg);
        match mac.attempt(1_000_000, true, &mut rng) {
            TxAction::Retry { at_ns } => {
                assert!(at_ns >= 1_000_000 + cfg.ifs_ns);
                // First collision: at most 1 slot of backoff.
                assert!(at_ns <= 1_000_000 + cfg.ifs_ns + cfg.slot_time_ns);
            }
            other => panic!("expected retry, got {other:?}"),
        }
        assert_eq!(mac.stats().collisions, 1);
    }

    #[test]
    fn backoff_window_grows_with_consecutive_collisions() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MacConfig::default();
        let mut mac = CsmaCa::new(cfg);
        // Drive several collisions; the maximum observed retry delay should
        // grow (statistically certain over enough draws).
        let mut max_delay_early = 0;
        let mut max_delay_late = 0;
        for round in 0..12 {
            if let TxAction::Retry { at_ns } = mac.attempt(0, true, &mut rng) {
                let delay = at_ns - cfg.ifs_ns;
                if round < 2 {
                    max_delay_early = max_delay_early.max(delay);
                } else if round >= 8 {
                    max_delay_late = max_delay_late.max(delay);
                }
            }
        }
        assert!(
            max_delay_late > max_delay_early,
            "{max_delay_late} vs {max_delay_early}"
        );
    }

    #[test]
    fn excessive_collisions_drop_the_frame() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mac = CsmaCa::new(MacConfig {
            max_attempts: 3,
            ..MacConfig::default()
        });
        assert!(matches!(
            mac.attempt(0, true, &mut rng),
            TxAction::Retry { .. }
        ));
        assert!(matches!(
            mac.attempt(0, true, &mut rng),
            TxAction::Retry { .. }
        ));
        assert_eq!(mac.attempt(0, true, &mut rng), TxAction::Drop);
        assert_eq!(mac.stats().drops, 1);
        // Backoff reset after the drop: the next frame starts fresh.
        assert!(matches!(
            mac.attempt(0, true, &mut rng),
            TxAction::Retry { .. }
        ));
    }

    #[test]
    fn success_resets_backoff() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mac = CsmaCa::new(MacConfig::default());
        for _ in 0..5 {
            mac.attempt(0, true, &mut rng);
        }
        assert_eq!(mac.attempt(0, false, &mut rng), TxAction::Transmit);
        // After a success, the next collision is a "first" collision again.
        if let TxAction::Retry { at_ns } = mac.attempt(0, true, &mut rng) {
            let cfg = mac.config();
            assert!(at_ns <= cfg.ifs_ns + cfg.slot_time_ns);
        } else {
            panic!("expected retry");
        }
    }

    #[test]
    fn collision_free_fraction() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut mac = CsmaCa::new(MacConfig::default());
        // 3 busy, 7 free.
        for i in 0..10 {
            mac.attempt(0, i < 3, &mut rng);
        }
        assert!((mac.stats().collision_free_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(MacStats::default().collision_free_fraction(), 1.0);
    }
}
