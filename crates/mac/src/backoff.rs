//! Truncated binary exponential backoff, as performed by the 82593's
//! "transmission scheduling with exponential backoff" (paper Section 2).
//!
//! After the `n`-th consecutive collision (for WaveLAN: the `n`-th time the
//! medium was found busy), the station waits a uniformly random number of
//! slot times in `[0, 2^min(n, cap))` before the next attempt, and gives up
//! after `max_attempts`.

use rand::Rng;

/// Backoff state for one pending frame.
#[derive(Debug, Clone)]
pub struct ExponentialBackoff {
    /// Consecutive collisions experienced by the current frame.
    attempts: u32,
    /// Exponent cap (Ethernet uses 10).
    cap: u32,
    /// Attempts after which the frame is abandoned (Ethernet uses 16).
    max_attempts: u32,
}

impl ExponentialBackoff {
    /// Standard Ethernet parameters: exponent capped at 10, 16 attempts.
    pub fn ethernet() -> ExponentialBackoff {
        ExponentialBackoff {
            attempts: 0,
            cap: 10,
            max_attempts: 16,
        }
    }

    /// Custom parameters.
    pub fn new(cap: u32, max_attempts: u32) -> ExponentialBackoff {
        ExponentialBackoff {
            attempts: 0,
            cap,
            max_attempts,
        }
    }

    /// Number of collisions the current frame has suffered.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Records a collision and draws the wait, in slots. Returns `None` when
    /// the frame must be abandoned (excessive collisions).
    pub fn on_collision<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u64> {
        self.attempts += 1;
        if self.attempts >= self.max_attempts {
            return None;
        }
        let exp = self.attempts.min(self.cap);
        let window = 1u64 << exp;
        Some(rng.gen_range(0..window))
    }

    /// Resets for the next frame after a successful transmission.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn window_grows_exponentially() {
        let mut rng = StdRng::seed_from_u64(1);
        // Sample maxima over many draws at each attempt count.
        for attempt in 1u32..=6 {
            let mut b = ExponentialBackoff::ethernet();
            // Advance to the desired attempt count.
            for _ in 0..attempt - 1 {
                b.on_collision(&mut rng);
            }
            let window = 1u64 << attempt;
            let mut max_seen = 0;
            for _ in 0..2000 {
                let mut b2 = b.clone();
                let slots = b2.on_collision(&mut rng).unwrap();
                assert!(slots < window, "attempt {attempt}: {slots} ≥ {window}");
                max_seen = max_seen.max(slots);
            }
            // With 2000 draws the max should get close to the top.
            assert!(max_seen >= window / 2, "attempt {attempt}: max {max_seen}");
        }
    }

    #[test]
    fn exponent_caps() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = ExponentialBackoff::new(3, 100);
        for _ in 0..20 {
            if let Some(slots) = b.on_collision(&mut rng) {
                assert!(slots < 8);
            }
        }
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = ExponentialBackoff::new(10, 4);
        assert!(b.on_collision(&mut rng).is_some());
        assert!(b.on_collision(&mut rng).is_some());
        assert!(b.on_collision(&mut rng).is_some());
        assert!(b.on_collision(&mut rng).is_none());
        assert_eq!(b.attempts(), 4);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = ExponentialBackoff::ethernet();
        b.on_collision(&mut rng);
        b.on_collision(&mut rng);
        assert_eq!(b.attempts(), 2);
        b.reset();
        assert_eq!(b.attempts(), 0);
    }
}
