//! A TDMA MAC for the pico-cellular architecture the paper advocates.
//!
//! Paper Section 1: "we believe that a Time Division Multiple Access (TDMA)
//! MAC layer atop a per-cell shared medium is attractive because TDMA allows
//! flexible bandwidth sharing among stations whose needs will vary with
//! time, and because a shared channel should support multicast connections
//! efficiently." (This is the direction the authors' later WaveLAN work —
//! and the Olivetti wireless ATM LAN of Section 9.2 — took.)
//!
//! The design here is a base-station-scheduled reservation TDMA:
//!
//! * time is divided into fixed *frames* of `slots_per_frame` slots;
//! * each frame starts with the base station's schedule beacon (slot 0);
//! * stations piggyback queue-depth *reservations* on their transmissions;
//! * the scheduler grants each station slots proportional to its demand,
//!   with a one-slot minimum for any station with traffic (so a station can
//!   always ask for more), recycling idle slots to backlogged stations.
//!
//! [`compare_with_csma`] runs a slot-level shootout against a CSMA/CA
//! collision model at equal offered load, measuring aggregate throughput
//! and Jain fairness — the quantified version of the paper's "flexible
//! bandwidth sharing" argument.

use rand::Rng;

/// A frame schedule: which station owns each slot (None = beacon/idle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSchedule {
    /// Slot owners; index 0 is always the beacon (None).
    pub slots: Vec<Option<usize>>,
}

impl FrameSchedule {
    /// Number of data slots granted to `station`.
    pub fn granted(&self, station: usize) -> usize {
        self.slots.iter().filter(|s| **s == Some(station)).count()
    }
}

/// The base station's reservation scheduler.
#[derive(Debug, Clone)]
pub struct TdmaScheduler {
    stations: usize,
    slots_per_frame: usize,
    /// Last reported queue depth per station.
    demand: Vec<u64>,
}

impl TdmaScheduler {
    /// A scheduler for `stations` stations and `slots_per_frame` slots
    /// (including the beacon slot). Needs at least 2 slots.
    pub fn new(stations: usize, slots_per_frame: usize) -> TdmaScheduler {
        assert!(slots_per_frame >= 2, "need a beacon slot plus data");
        TdmaScheduler {
            stations,
            slots_per_frame,
            demand: vec![0; stations],
        }
    }

    /// Records a station's reservation (its current queue depth).
    pub fn reserve(&mut self, station: usize, queue_depth: u64) {
        self.demand[station] = queue_depth;
    }

    /// Builds the next frame's schedule: demand-proportional with a one-slot
    /// floor for every station with demand, largest-remainder rounding, and
    /// leftover slots to the most-backlogged stations.
    pub fn schedule(&self) -> FrameSchedule {
        let data_slots = self.slots_per_frame - 1;
        let total_demand: u64 = self.demand.iter().sum();
        let mut grants = vec![0usize; self.stations];
        if total_demand > 0 {
            let claimants: Vec<usize> =
                (0..self.stations).filter(|&s| self.demand[s] > 0).collect();
            // Floor: one slot each, as far as slots allow (most-backlogged
            // first when there are more claimants than slots).
            let mut order = claimants.clone();
            order.sort_by_key(|&s| std::cmp::Reverse(self.demand[s]));
            for &s in order.iter().take(data_slots) {
                grants[s] = 1;
            }
            let floor_used: usize = grants.iter().sum();
            let mut remaining = data_slots - floor_used;
            // Proportional share of the remainder by largest remainder.
            if remaining > 0 {
                let mut shares: Vec<(usize, f64)> = claimants
                    .iter()
                    .map(|&s| {
                        let exact = remaining as f64 * self.demand[s] as f64 / total_demand as f64;
                        (s, exact)
                    })
                    .collect();
                for (s, exact) in &shares {
                    let whole = exact.floor() as usize;
                    grants[*s] += whole;
                    remaining -= whole;
                }
                shares.sort_by(|a, b| {
                    (b.1 - b.1.floor())
                        .partial_cmp(&(a.1 - a.1.floor()))
                        .unwrap()
                });
                for (s, _) in shares.iter().take(remaining) {
                    grants[*s] += 1;
                }
            }
        }
        // Lay out the frame: beacon, then round-robin interleaving of the
        // grants (spreads each station's slots across the frame, lowering
        // per-station latency).
        let mut slots = vec![None; self.slots_per_frame];
        let mut left = grants;
        let mut idx = 1;
        while idx < self.slots_per_frame {
            let mut progressed = false;
            for (s, remaining) in left.iter_mut().enumerate() {
                if idx >= self.slots_per_frame {
                    break;
                }
                if *remaining > 0 {
                    slots[idx] = Some(s);
                    *remaining -= 1;
                    idx += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // idle slots stay None
            }
        }
        FrameSchedule { slots }
    }
}

/// Result of the TDMA-vs-CSMA shootout.
#[derive(Debug, Clone)]
pub struct MacComparison {
    /// Fraction of slots carrying a successful packet, TDMA.
    pub tdma_throughput: f64,
    /// Fraction of slots carrying a successful (non-collided) packet, CSMA.
    pub csma_throughput: f64,
    /// Jain fairness index of per-station delivery, TDMA.
    pub tdma_fairness: f64,
    /// Jain fairness index of per-station delivery, CSMA.
    pub csma_fairness: f64,
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`; 1.0 = perfectly fair.
pub fn jain_index(delivered: &[u64]) -> f64 {
    let n = delivered.len() as f64;
    let sum: f64 = delivered.iter().map(|&x| x as f64).sum();
    let sum_sq: f64 = delivered.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sum_sq)
}

/// Slot-level shootout at equal offered load.
///
/// Each station receives packets at `arrival_prob` per slot (asymmetric
/// loads via `weights`). TDMA runs the reservation scheduler; CSMA/CA is
/// modelled at slot level: every backlogged station transmits in a slot with
/// the standard p-persistence `1/(backlogged stations)`, a lone transmitter
/// succeeds, two or more collide (WaveLAN cannot detect collisions, so a
/// collision costs the whole slot).
pub fn compare_with_csma<R: Rng + ?Sized>(
    stations: usize,
    slots_per_frame: usize,
    frames: usize,
    arrival_prob: f64,
    weights: &[f64],
    rng: &mut R,
) -> MacComparison {
    assert_eq!(weights.len(), stations);
    let total_slots = frames * slots_per_frame;

    // --- TDMA ---
    let mut scheduler = TdmaScheduler::new(stations, slots_per_frame);
    let mut queues = vec![0u64; stations];
    let mut tdma_delivered = vec![0u64; stations];
    for _ in 0..frames {
        let schedule = scheduler.schedule();
        for slot in &schedule.slots {
            // Arrivals happen every slot.
            for (s, q) in queues.iter_mut().enumerate() {
                if rng.gen::<f64>() < arrival_prob * weights[s] {
                    *q += 1;
                }
            }
            if let Some(owner) = slot {
                if queues[*owner] > 0 {
                    queues[*owner] -= 1;
                    tdma_delivered[*owner] += 1;
                }
            }
        }
        for (s, &q) in queues.iter().enumerate() {
            scheduler.reserve(s, q);
        }
    }
    let tdma_total: u64 = tdma_delivered.iter().sum();

    // --- CSMA/CA ---
    let mut queues = vec![0u64; stations];
    let mut csma_delivered = vec![0u64; stations];
    for _ in 0..total_slots {
        for (s, q) in queues.iter_mut().enumerate() {
            if rng.gen::<f64>() < arrival_prob * weights[s] {
                *q += 1;
            }
        }
        let backlogged: Vec<usize> = (0..stations).filter(|&s| queues[s] > 0).collect();
        if backlogged.is_empty() {
            continue;
        }
        let p = 1.0 / backlogged.len() as f64;
        let transmitters: Vec<usize> = backlogged
            .into_iter()
            .filter(|_| rng.gen::<f64>() < p)
            .collect();
        if let [lone] = transmitters[..] {
            queues[lone] -= 1;
            csma_delivered[lone] += 1;
        }
        // 0 transmitters: idle slot; ≥2: collision, slot wasted.
    }
    let csma_total: u64 = csma_delivered.iter().sum();

    MacComparison {
        tdma_throughput: tdma_total as f64 / total_slots as f64,
        csma_throughput: csma_total as f64 / total_slots as f64,
        tdma_fairness: jain_index(&tdma_delivered),
        csma_fairness: jain_index(&csma_delivered),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schedule_reserves_the_beacon_slot() {
        let mut s = TdmaScheduler::new(3, 8);
        s.reserve(0, 10);
        let f = s.schedule();
        assert_eq!(f.slots[0], None);
        assert_eq!(f.slots.len(), 8);
    }

    #[test]
    fn idle_stations_get_nothing() {
        let mut s = TdmaScheduler::new(4, 9);
        s.reserve(1, 5);
        s.reserve(3, 5);
        let f = s.schedule();
        assert_eq!(f.granted(0), 0);
        assert_eq!(f.granted(2), 0);
        assert_eq!(f.granted(1) + f.granted(3), 8);
        // Equal demand → equal grants.
        assert_eq!(f.granted(1), f.granted(3));
    }

    #[test]
    fn grants_are_demand_proportional() {
        let mut s = TdmaScheduler::new(2, 13); // 12 data slots
        s.reserve(0, 30);
        s.reserve(1, 10);
        let f = s.schedule();
        assert_eq!(f.granted(0) + f.granted(1), 12);
        // 3:1 demand → 9:3 grants.
        assert_eq!(f.granted(0), 9, "{f:?}");
        assert_eq!(f.granted(1), 3, "{f:?}");
    }

    #[test]
    fn every_claimant_gets_a_floor_slot() {
        // One elephant, three mice: the mice still each get a slot (the
        // paper's "flexible bandwidth sharing" needs a control path).
        let mut s = TdmaScheduler::new(4, 10);
        s.reserve(0, 1_000);
        for m in 1..4 {
            s.reserve(m, 1);
        }
        let f = s.schedule();
        for m in 1..4 {
            assert!(f.granted(m) >= 1, "mouse {m} starved: {f:?}");
        }
        assert!(f.granted(0) >= 5);
    }

    #[test]
    fn slots_are_interleaved_not_clumped() {
        let mut s = TdmaScheduler::new(2, 9);
        s.reserve(0, 8);
        s.reserve(1, 8);
        let f = s.schedule();
        // Equal grants interleave: adjacent data slots alternate owners.
        for w in f.slots[1..].windows(2) {
            if let (Some(a), Some(b)) = (w[0], w[1]) {
                assert_ne!(a, b, "{f:?}");
            }
        }
    }

    #[test]
    fn no_demand_means_idle_frame() {
        let s = TdmaScheduler::new(3, 6);
        let f = s.schedule();
        assert!(f.slots.iter().all(Option::is_none));
    }

    #[test]
    fn jain_index_properties() {
        assert!((jain_index(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[10, 0, 0, 0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[0, 0]), 1.0);
        let mid = jain_index(&[8, 4, 2, 2]);
        assert!(mid > 0.25 && mid < 1.0);
    }

    #[test]
    fn tdma_wins_under_saturation() {
        // Saturated symmetric load: CSMA wastes slots on collisions; TDMA
        // fills every data slot — the paper's argument for reservation MACs
        // in pico-cells.
        let mut rng = StdRng::seed_from_u64(1);
        let c = compare_with_csma(8, 16, 400, 0.5, &[1.0; 8], &mut rng);
        assert!(c.tdma_throughput > 0.9, "{c:?}");
        assert!(c.csma_throughput < 0.6, "{c:?}");
        assert!(c.tdma_fairness > 0.98, "{c:?}");
    }

    #[test]
    fn light_load_is_a_wash() {
        // At light load, both deliver everything; TDMA pays only the beacon.
        let mut rng = StdRng::seed_from_u64(2);
        let c = compare_with_csma(4, 16, 400, 0.01, &[1.0; 4], &mut rng);
        assert!(
            (c.tdma_throughput - c.csma_throughput).abs() < 0.01,
            "{c:?}"
        );
    }

    #[test]
    fn tdma_tracks_asymmetric_demand() {
        // "bandwidth sharing among stations whose needs will vary with time":
        // a 4:2:1:1 load should deliver roughly 4:2:1:1 under TDMA.
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [4.0, 2.0, 1.0, 1.0];
        let mut scheduler = TdmaScheduler::new(4, 17);
        let mut queues = [0u64; 4];
        let mut delivered = vec![0u64; 4];
        for _ in 0..600 {
            let schedule = scheduler.schedule();
            for slot in &schedule.slots {
                for (s, q) in queues.iter_mut().enumerate() {
                    if rng.gen::<f64>() < 0.04 * weights[s] {
                        *q += 1;
                    }
                }
                if let Some(owner) = slot {
                    if queues[*owner] > 0 {
                        queues[*owner] -= 1;
                        delivered[*owner] += 1;
                    }
                }
            }
            for (s, &q) in queues.iter().enumerate() {
                scheduler.reserve(s, q);
            }
        }
        let ratio = delivered[0] as f64 / delivered[2].max(1) as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "4:1 load gave {ratio}: {delivered:?}"
        );
        // Nobody starves.
        assert!(delivered.iter().all(|&d| d > 100), "{delivered:?}");
    }
}
