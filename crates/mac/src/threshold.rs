//! The receive threshold and quality threshold.
//!
//! Paper Section 2: WaveLAN "gives receivers the ability to mask out weak
//! signals through a receive threshold, which improves throughput and may be
//! sufficient to simulate cell boundaries". Section 5.3 studies the threshold
//! experimentally (Figure 3) and finds it *imperfect*: because per-packet
//! reported levels jitter a few units, "it is wise to allow a margin of
//! several units when choosing a threshold" — a behaviour that emerges
//! naturally here from the AGC jitter in `wavelan-phy`.
//!
//! A crucial empirical property the model preserves: "the receive threshold
//! ... seems to cleanly filter packets. That is, we did not receive any
//! damaged or truncated packets in the course of the trial" — filtering
//! happens *before* the packet is handed up, on the packet's own reported
//! level, so a filtered packet simply vanishes rather than appearing damaged.
//!
//! The same threshold governs carrier sense: raising it "hide\[s\] carrier
//! sense from the Ethernet chip", letting a transmitter ignore distant
//! systems (the Table 14 experiment).

use wavelan_phy::link::RxMetrics;

/// Receive-side masking configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// Minimum signal level for a packet to be delivered / carrier sensed.
    pub receive_level: u8,
    /// Minimum signal quality for a packet to be delivered.
    pub quality: u8,
}

impl Default for Thresholds {
    /// The study's standard configuration: "Unless otherwise specified, all
    /// runs use a receive threshold of 3 and a quality threshold of 1"
    /// (Section 4).
    fn default() -> Self {
        Thresholds {
            receive_level: 3,
            quality: 1,
        }
    }
}

impl Thresholds {
    /// The saturating configuration used to make a unit "transmit
    /// continuously, and not defer to any nearby stations" (Section 7.4 set
    /// the hostile transmitters' threshold to 35).
    pub fn deaf() -> Thresholds {
        Thresholds {
            receive_level: 35,
            quality: 1,
        }
    }

    /// Whether a packet with these reported metrics is delivered to the host.
    pub fn delivers(&self, metrics: &RxMetrics) -> bool {
        metrics.level.value() >= self.receive_level && metrics.quality >= self.quality
    }

    /// Whether a carrier observed at `sensed_level` asserts carrier sense
    /// (and thus counts as a "collision" for a would-be transmitter).
    pub fn senses_carrier(&self, sensed_level: u8) -> bool {
        sensed_level >= self.receive_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavelan_phy::agc::SignalLevel;

    fn metrics(level: u8, quality: u8) -> RxMetrics {
        RxMetrics {
            level: SignalLevel(level),
            silence: SignalLevel(3),
            quality,
            antenna: 0,
        }
    }

    #[test]
    fn default_matches_study_configuration() {
        let t = Thresholds::default();
        assert_eq!(t.receive_level, 3);
        assert_eq!(t.quality, 1);
    }

    #[test]
    fn level_filtering() {
        let t = Thresholds {
            receive_level: 25,
            quality: 1,
        };
        assert!(t.delivers(&metrics(25, 15)));
        assert!(t.delivers(&metrics(30, 15)));
        assert!(!t.delivers(&metrics(24, 15)));
        assert!(!t.delivers(&metrics(9, 15)));
    }

    #[test]
    fn quality_filtering() {
        let t = Thresholds {
            receive_level: 3,
            quality: 8,
        };
        assert!(t.delivers(&metrics(30, 8)));
        assert!(!t.delivers(&metrics(30, 7)));
    }

    #[test]
    fn carrier_sense_follows_receive_threshold() {
        // Section 7.4: threshold 25 masks jammers at levels ~14 and ~9.5.
        let t = Thresholds {
            receive_level: 25,
            quality: 1,
        };
        assert!(!t.senses_carrier(14));
        assert!(!t.senses_carrier(10));
        assert!(t.senses_carrier(28));
        // Default threshold hears everything.
        assert!(Thresholds::default().senses_carrier(10));
    }

    #[test]
    fn deaf_station_ignores_peers() {
        let t = Thresholds::deaf();
        assert!(!t.senses_carrier(28));
        assert!(!t.senses_carrier(34));
        assert!(t.senses_carrier(35));
    }
}
