#![warn(missing_docs)]

//! # wavelan-mac
//!
//! The WaveLAN medium-access layer: the CSMA/CA protocol and the parts of the
//! Intel 82593 controller + modem control unit that the SIGCOMM '96 study
//! interacts with.
//!
//! Paper Section 2: "As it is difficult to detect collisions in this radio
//! environment, WaveLAN employs a CSMA/CA (collision avoidance) MAC protocol.
//! ... any stations which become ready to transmit while the medium is busy
//! will delay for a random interval when the medium becomes free. Aside from
//! the modified MAC protocol and lower data rate, the 82593 performs all
//! standard Ethernet functions, including framing, address recognition and
//! filtering, CRC generation and checking, and transmission scheduling with
//! exponential backoff."
//!
//! Modules:
//!
//! * [`backoff`] — Ethernet-style truncated binary exponential backoff,
//! * [`csma`] — the CSMA/CA transmit state machine ("medium busy counts as a
//!   collision"),
//! * [`network_id`] — the modem's 16-bit network-ID wrapper,
//! * [`threshold`] — receive threshold and quality threshold filtering
//!   (Sections 2, 5.3, 7.4),
//! * [`controller`] — 82593-style receive-side filtering: promiscuous mode,
//!   address recognition, CRC filtering,
//! * [`tdma`] — the reservation TDMA MAC the paper's introduction argues
//!   future pico-cellular networks should use, with a slot-level
//!   CSMA-vs-TDMA comparison harness.

pub mod backoff;
pub mod controller;
pub mod csma;
pub mod network_id;
pub mod tdma;
pub mod threshold;

pub use backoff::ExponentialBackoff;
pub use controller::{RxDecision, RxFilter};
pub use csma::{CsmaCa, MacConfig, TxAction};
pub use network_id::{strip_network_id, wrap_with_network_id, NetworkId, NETWORK_ID_LEN};
pub use tdma::{compare_with_csma, jain_index, TdmaScheduler};
pub use threshold::Thresholds;
