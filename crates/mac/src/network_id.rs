//! The modem control unit's 16-bit network ID.
//!
//! Paper Section 2: "The modem control unit prepends a 16-bit 'network ID' to
//! every packet on transmit, and can be set to reject all but one network ID
//! on receive. ... the 'network ID' provides multiple logical Ethernet
//! address spaces, which allows WaveLAN-to-Ethernet bridges to use standard
//! bridge routing protocols."

/// Bytes of modem framing prepended to the Ethernet frame.
pub const NETWORK_ID_LEN: usize = 2;

/// A 16-bit WaveLAN network identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetworkId(pub u16);

impl NetworkId {
    /// The identifier used by the reproduction testbed by default.
    pub const TESTBED: NetworkId = NetworkId(0xCA_FE);
}

impl core::fmt::Display for NetworkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:04x}", self.0)
    }
}

/// Prepends the network ID to an Ethernet frame, producing the on-air bytes.
pub fn wrap_with_network_id(id: NetworkId, ethernet_frame: &[u8]) -> Vec<u8> {
    let mut wire = Vec::with_capacity(NETWORK_ID_LEN + ethernet_frame.len());
    wire.extend_from_slice(&id.0.to_be_bytes());
    wire.extend_from_slice(ethernet_frame);
    wire
}

/// Splits the on-air bytes back into `(network id, ethernet frame)`. Returns
/// `None` only when even the 2-byte header is missing (a packet truncated
/// that early never reaches the controller).
pub fn strip_network_id(wire: &[u8]) -> Option<(NetworkId, &[u8])> {
    if wire.len() < NETWORK_ID_LEN {
        return None;
    }
    let id = NetworkId(u16::from_be_bytes([wire[0], wire[1]]));
    Some((id, &wire[NETWORK_ID_LEN..]))
}

/// Receive-side network-ID filter state: either promiscuous across IDs or
/// locked to one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkIdFilter {
    /// Accept any network ID (the study's tracing configuration).
    AcceptAll,
    /// "reject all but one network ID on receive".
    Only(NetworkId),
}

impl NetworkIdFilter {
    /// Whether a packet with the given ID passes the filter.
    pub fn accepts(&self, id: NetworkId) -> bool {
        match self {
            NetworkIdFilter::AcceptAll => true,
            NetworkIdFilter::Only(want) => *want == id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_strip_round_trip() {
        let frame = vec![1u8, 2, 3, 4, 5];
        let wire = wrap_with_network_id(NetworkId(0xBEEF), &frame);
        assert_eq!(wire.len(), frame.len() + NETWORK_ID_LEN);
        let (id, inner) = strip_network_id(&wire).unwrap();
        assert_eq!(id, NetworkId(0xBEEF));
        assert_eq!(inner, &frame[..]);
    }

    #[test]
    fn too_short_wire_is_rejected() {
        assert!(strip_network_id(&[0x12]).is_none());
        assert!(strip_network_id(&[]).is_none());
        // Exactly two bytes: valid, empty frame.
        let (id, inner) = strip_network_id(&[0x00, 0x07]).unwrap();
        assert_eq!(id, NetworkId(7));
        assert!(inner.is_empty());
    }

    #[test]
    fn filter_semantics() {
        let f = NetworkIdFilter::Only(NetworkId(5));
        assert!(f.accepts(NetworkId(5)));
        assert!(!f.accepts(NetworkId(6)));
        assert!(NetworkIdFilter::AcceptAll.accepts(NetworkId(6)));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(NetworkId(0xCAFE).to_string(), "cafe");
    }
}
