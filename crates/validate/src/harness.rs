//! The fidelity harness: run the corpus's artifacts across N seeds,
//! aggregate each checked quantity, judge it against its band, and emit a
//! structured [`FidelityReport`].
//!
//! Each artifact runs once per seed (`base_seed`, `base_seed + 1`, …,
//! trials inside a run fan out over the parallel executor); a check's
//! verdict judges the *across-seed mean* of its quantity, with the
//! per-seed spread reported alongside. The report carries no wall-clock
//! data, so the same configuration always serializes to bit-identical
//! JSON — the determinism test relies on this.

use crate::corpus::corpus;
use crate::expect::{TableExpectation, Verdict};
use serde::{Serialize, SerializeStruct, Serializer};
use wavelan_analysis::{Block, Cell, Column, Report, Table};
use wavelan_core::registry;
use wavelan_core::{Executor, Scale};

/// What to run: the scale, the first seed, and how many consecutive seeds.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Scale every artifact runs at.
    pub scale: Scale,
    /// First seed; seed `i` of `seeds` is `base_seed + i`.
    pub base_seed: u64,
    /// Number of seeds (at least 1).
    pub seeds: u64,
}

/// A check's quantity aggregated across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observed {
    /// Mean across seeds — the value the verdict judges.
    pub mean: f64,
    /// Smallest per-seed value.
    pub min: f64,
    /// Largest per-seed value.
    pub max: f64,
}

impl Serialize for Observed {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Observed", 3)?;
        s.serialize_field("mean", &self.mean)?;
        s.serialize_field("min", &self.min)?;
        s.serialize_field("max", &self.max)?;
        s.end()
    }
}

/// One check, judged.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// The corpus check id (`table3.all.level`).
    pub id: &'static str,
    /// The paper claim the check encodes.
    pub paper: &'static str,
    /// The band, as text (`"14.15 ± 2.5"`).
    pub expected: String,
    /// The aggregated observation; `None` when skipped or unresolvable.
    pub observed: Option<Observed>,
    /// The verdict.
    pub verdict: Verdict,
    /// Why, when the verdict needs explaining (resolution failure, skip
    /// reason).
    pub note: Option<String>,
}

impl Serialize for CheckResult {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("CheckResult", 6)?;
        s.serialize_field("id", self.id)?;
        s.serialize_field("paper", self.paper)?;
        s.serialize_field("expected", &self.expected)?;
        s.serialize_field("observed", &self.observed)?;
        s.serialize_field("verdict", self.verdict.name())?;
        s.serialize_field("note", &self.note)?;
        s.end()
    }
}

/// One paper table's verdict: the worst of its evaluated checks.
#[derive(Debug, Clone)]
pub struct TableResult {
    /// The paper label (`"Table 2"` … `"Figure 3"`).
    pub paper_table: &'static str,
    /// The registry artifact the checks resolved against.
    pub artifact: &'static str,
    /// Worst verdict among non-skipped checks ([`Verdict::Skip`] when the
    /// scale evaluated none of them).
    pub verdict: Verdict,
    /// Per-check results, corpus order.
    pub checks: Vec<CheckResult>,
}

impl Serialize for TableResult {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("TableResult", 4)?;
        s.serialize_field("paper_table", self.paper_table)?;
        s.serialize_field("artifact", self.artifact)?;
        s.serialize_field("verdict", self.verdict.name())?;
        s.serialize_field("checks", &self.checks)?;
        s.end()
    }
}

/// Check counts by verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Checks that passed.
    pub pass: u64,
    /// Checks in the warn band.
    pub warn: u64,
    /// Checks that failed.
    pub fail: u64,
    /// Checks skipped at this scale.
    pub skip: u64,
}

impl Serialize for Counts {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Counts", 4)?;
        s.serialize_field("pass", &self.pass)?;
        s.serialize_field("warn", &self.warn)?;
        s.serialize_field("fail", &self.fail)?;
        s.serialize_field("skip", &self.skip)?;
        s.end()
    }
}

/// The full fidelity run: configuration echo, per-table verdicts, totals.
#[derive(Debug, Clone)]
pub struct FidelityReport {
    /// Scale name (`smoke`, `reduced`, `paper`).
    pub scale: &'static str,
    /// First seed.
    pub base_seed: u64,
    /// Seed count.
    pub seeds: u64,
    /// Worst table verdict (skips don't count).
    pub verdict: Verdict,
    /// Check totals across all tables.
    pub counts: Counts,
    /// Per-table results, paper order.
    pub tables: Vec<TableResult>,
}

impl Serialize for FidelityReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("FidelityReport", 6)?;
        s.serialize_field("scale", self.scale)?;
        s.serialize_field("base_seed", &self.base_seed)?;
        s.serialize_field("seeds", &self.seeds)?;
        s.serialize_field("verdict", self.verdict.name())?;
        s.serialize_field("counts", &self.counts)?;
        s.serialize_field("tables", &self.tables)?;
        s.end()
    }
}

/// Worst verdict of an iterator, ignoring skips; `Skip` when empty or
/// all-skip. (`Fail` > `Warn` > `Pass` in severity; the derive order on
/// [`Verdict`] puts `Skip` last, so `max` alone would rank it above
/// `Fail`.)
fn worst(verdicts: impl Iterator<Item = Verdict>) -> Verdict {
    verdicts
        .filter(|v| *v != Verdict::Skip)
        .max()
        .unwrap_or(Verdict::Skip)
}

impl FidelityReport {
    /// Whether any table failed — the CLI's exit-code predicate.
    pub fn failed(&self) -> bool {
        self.verdict == Verdict::Fail
    }

    /// Renders the report as one paper-style text table per paper table,
    /// via the shared block renderer.
    pub fn to_report(&self) -> Report {
        let mut blocks = vec![Block::note(format!(
            "Fidelity vs Eckhardt & Steenkiste '96 (scale {}, seeds {}..{}): {} \
             ({} pass, {} warn, {} fail, {} skip)",
            self.scale,
            self.base_seed,
            self.base_seed + self.seeds - 1,
            self.verdict.name(),
            self.counts.pass,
            self.counts.warn,
            self.counts.fail,
            self.counts.skip,
        ))];
        for table in &self.tables {
            blocks.push(Block::Blank);
            blocks.push(Block::Table(Table {
                heading: Some(format!(
                    "{} ({}): {}",
                    table.paper_table,
                    table.artifact,
                    table.verdict.name()
                )),
                columns: vec![
                    Column::new("check", "Check").width(34).left().sep(""),
                    Column::new("expected", "Expected").width(18),
                    Column::new("observed", "Observed").width(26),
                    Column::new("verdict", "Verdict").width(8),
                ],
                rows: table
                    .checks
                    .iter()
                    .map(|c| {
                        let observed = match (&c.observed, &c.note) {
                            (Some(o), _) if self.seeds > 1 => {
                                format!("{:.4} [{:.4}, {:.4}]", o.mean, o.min, o.max)
                            }
                            (Some(o), _) => format!("{:.4}", o.mean),
                            (None, Some(note)) => note.clone(),
                            (None, None) => "-".to_string(),
                        };
                        vec![
                            Cell::Str(c.id.to_string()),
                            Cell::Str(c.expected.clone()),
                            Cell::Str(observed),
                            Cell::Str(c.verdict.name().to_string()),
                        ]
                    })
                    .collect(),
            }));
        }
        Report::new("fidelity", "Tables 2-14 and Figures 1-3", 0, blocks)
    }
}

/// Runs the full corpus under `config` and judges every check.
///
/// Each distinct artifact runs once per seed (shared across the paper
/// tables it carries — `table5-7` backs three [`TableExpectation`]s but
/// runs only `seeds` times).
pub fn run(config: &Config, exec: &Executor) -> FidelityReport {
    let corpus = corpus();
    let seeds: Vec<u64> = (0..config.seeds.max(1))
        .map(|i| config.base_seed + i)
        .collect();

    // One run set per distinct artifact, first-use order.
    let mut artifacts: Vec<(&'static str, Vec<Report>)> = Vec::new();
    for table in &corpus {
        if artifacts.iter().any(|(name, _)| *name == table.artifact) {
            continue;
        }
        let experiment = registry::find(table.artifact)
            .unwrap_or_else(|| panic!("corpus references unknown artifact {}", table.artifact));
        let runs = seeds
            .iter()
            .map(|&seed| experiment.run(config.scale, seed, exec))
            .collect();
        artifacts.push((table.artifact, runs));
    }

    let mut counts = Counts::default();
    let tables: Vec<TableResult> = corpus
        .iter()
        .map(|expectation| {
            let runs = &artifacts
                .iter()
                .find(|(name, _)| *name == expectation.artifact)
                .expect("artifact was run above")
                .1;
            let result = judge_table(expectation, runs, config.scale);
            for check in &result.checks {
                match check.verdict {
                    Verdict::Pass => counts.pass += 1,
                    Verdict::Warn => counts.warn += 1,
                    Verdict::Fail => counts.fail += 1,
                    Verdict::Skip => counts.skip += 1,
                }
            }
            result
        })
        .collect();

    FidelityReport {
        scale: config.scale.name(),
        base_seed: config.base_seed,
        seeds: config.seeds.max(1),
        verdict: worst(tables.iter().map(|t| t.verdict)),
        counts,
        tables,
    }
}

fn judge_table(expectation: &TableExpectation, runs: &[Report], scale: Scale) -> TableResult {
    let checks: Vec<CheckResult> = expectation
        .checks
        .iter()
        .map(|check| {
            if !check.runs_at(scale) {
                return CheckResult {
                    id: check.id,
                    paper: check.paper,
                    expected: check.expected.describe(),
                    observed: None,
                    verdict: Verdict::Skip,
                    note: Some(format!(
                        "needs --scale {} or larger",
                        check.min_scale.name()
                    )),
                };
            }
            let mut values = Vec::with_capacity(runs.len());
            for report in runs {
                match check.quantity.resolve(report) {
                    Ok(v) => values.push(v),
                    Err(why) => {
                        return CheckResult {
                            id: check.id,
                            paper: check.paper,
                            expected: check.expected.describe(),
                            observed: None,
                            verdict: Verdict::Fail,
                            note: Some(why),
                        }
                    }
                }
            }
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let observed = Observed {
                mean,
                min: values.iter().copied().fold(f64::INFINITY, f64::min),
                max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            };
            CheckResult {
                id: check.id,
                paper: check.paper,
                expected: check.expected.describe(),
                observed: Some(observed),
                verdict: check.expected.judge(mean),
                note: None,
            }
        })
        .collect();

    TableResult {
        paper_table: expectation.paper_table,
        artifact: expectation.artifact,
        verdict: worst(checks.iter().map(|c| c.verdict)),
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_ignores_skips_and_ranks_fail_highest() {
        assert_eq!(worst([].into_iter()), Verdict::Skip);
        assert_eq!(
            worst([Verdict::Skip, Verdict::Skip].into_iter()),
            Verdict::Skip
        );
        assert_eq!(
            worst([Verdict::Pass, Verdict::Warn, Verdict::Skip].into_iter()),
            Verdict::Warn
        );
        assert_eq!(
            worst([Verdict::Fail, Verdict::Skip, Verdict::Pass].into_iter()),
            Verdict::Fail
        );
    }
}
