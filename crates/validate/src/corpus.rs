//! The expectation corpus: the paper's published values for Tables 2–14
//! and the Figure 1–3 trends, as typed [`Check`]s.
//!
//! Sourcing and calibration policy: each check's `paper` string cites the
//! published value or claim it encodes (Eckhardt & Steenkiste, SIGCOMM
//! '96); the tolerance states how close this reproduction is expected to
//! land, per the paper-vs-measured analysis in EXPERIMENTS.md. Where
//! EXPERIMENTS.md documents a known, explained deviation (e.g. jam-trial
//! silence sits ≈5 units below the paper's because our between-burst
//! residual is conservative), the band is placed around the claim as this
//! model reproduces it, and the `paper` string says so — a check that is
//! known-failing from day one guards nothing.
//!
//! Scale-free quantities only: checks constrain loss *fractions*, per-packet
//! signal means, level *differences* and class *ratios* — never raw packet
//! counts, which change with `--scale`. The handful of claims that need
//! paper-length trials to be statistically meaningful carry a
//! [`min_scale`](Check::min_scale) gate.

use crate::expect::{Check, Expected, Quantity, RowKey, TableExpectation};
use wavelan_analysis::StatField;

/// Shorthand for a plain numeric cell reference.
fn cell(table: &'static str, row: RowKey, column: &'static str) -> Quantity {
    Quantity::Cell(crate::expect::CellRef {
        table,
        row,
        column,
        stat: None,
    })
}

/// Shorthand for one stat field of a `↓ μ (σ) ↑` cell.
fn stat(
    table: &'static str,
    row: RowKey,
    column: &'static str,
    field: StatField,
) -> crate::expect::CellRef {
    crate::expect::CellRef {
        table,
        row,
        column,
        stat: Some(field),
    }
}

/// The mean of a signal-metrics cell, the workhorse quantity.
fn mean(table: &'static str, label: &'static str, column: &'static str) -> Quantity {
    Quantity::Cell(stat(table, RowKey::Label(label), column, StatField::Mean))
}

/// Mean-minus-mean between two rows of signal tables.
fn mean_diff(
    table_a: &'static str,
    label_a: &'static str,
    table_b: &'static str,
    label_b: &'static str,
    column: &'static str,
) -> Quantity {
    Quantity::Diff(
        stat(table_a, RowKey::Label(label_a), column, StatField::Mean),
        stat(table_b, RowKey::Label(label_b), column, StatField::Mean),
    )
}

fn within(target: f64, tol: f64) -> Expected {
    Expected::Within { target, tol }
}

fn between(min: f64, max: f64) -> Expected {
    Expected::Between { min, max }
}

const T2: &str = "Table 2:";
const F1: &str = "Figure 1:";
const T3: &str = "Table 3:";
const F2: &str = "Figure 2:";
const F3: &str = "Figure 3:";
const T4: &str = "Table 4:";
const T5: &str = "Table 5:";
const T6: &str = "Table 6:";
const T7: &str = "Table 7:";
const T8: &str = "Table 8:";
const T9: &str = "Table 9:";
const T10: &str = "Table 10:";
const T11: &str = "Table 11:";
const T12: &str = "Table 12:";
const T13: &str = "Table 13:";
const T14: &str = "Table 14:";

fn table2() -> TableExpectation {
    // "Wired-grade error rate": loss well under one per thousand, zero
    // truncation, essentially zero BER across all nine in-room trials.
    let office = |name: &'static str, id: &'static str| {
        Check::new(
            id,
            "per-trial in-room loss 0%-.07% (Table 2)",
            cell(T2, RowKey::Label(name), "loss"),
            Expected::AtMost(0.005),
        )
    };
    TableExpectation {
        paper_table: "Table 2",
        artifact: "table2",
        checks: vec![
            office("office1", "table2.office1.loss"),
            office("office5", "table2.office5.loss"),
            office("office9", "table2.office9.loss"),
            Check::new(
                "table2.office1.truncated",
                "0-1 truncated packets per in-room trial",
                cell(T2, RowKey::Label("office1"), "truncated"),
                Expected::AtMost(2.0),
            ),
            Check::new(
                "table2.office1.body_bits",
                "about 1 corrupted body bit in 10^10 (we see 0 in 10^9)",
                cell(T2, RowKey::Label("office1"), "body"),
                Expected::AtMost(10.0),
            ),
        ],
    }
}

fn figure1() -> TableExpectation {
    // Rows are one per 2 ft: index 0 = 0 ft, index 30 = 60 ft. The mean
    // column is a plain per-distance average, not a `↓ μ (σ) ↑` cell.
    let mean_at = |i: usize| crate::expect::CellRef {
        table: F1,
        row: RowKey::Index(i),
        column: "mean",
        stat: None,
    };
    TableExpectation {
        paper_table: "Figure 1",
        artifact: "figure1",
        checks: vec![
            Check::new(
                "figure1.contact.level",
                "level near the top of the scale at contact (0 ft)",
                Quantity::Cell(mean_at(0)),
                between(38.0, 46.0),
            ),
            Check::new(
                "figure1.falloff",
                "smooth dominant-path drop-off across the 60 ft hallway",
                Quantity::Diff(mean_at(0), mean_at(30)),
                Expected::AtLeast(15.0),
            ),
            Check::new(
                "figure1.dip.30ft",
                "multipath dip near 30 ft (paper: dips at ~6 and ~30 ft)",
                Quantity::Diff(mean_at(14), mean_at(15)),
                Expected::AtLeast(1.0),
            ),
            Check::new(
                "figure1.dip.30ft.recovery",
                "level recovers past the 30 ft dip",
                Quantity::Diff(mean_at(17), mean_at(16)),
                Expected::AtLeast(0.5),
            ),
        ],
    }
}

fn table3() -> TableExpectation {
    TableExpectation {
        paper_table: "Table 3",
        artifact: "table3",
        checks: vec![
            Check::new(
                "table3.all.level",
                "all test packets level mean 14.15",
                mean(T3, "All test packets", "level"),
                within(14.15, 2.5),
            ),
            Check::new(
                "table3.undamaged.level",
                "undamaged level mean 14.74",
                mean(T3, "Undamaged", "level"),
                within(14.74, 2.5),
            ),
            Check::new(
                "table3.truncated.level",
                "truncated level mean 6.20",
                mean(T3, "Truncated", "level"),
                within(6.20, 2.5),
            ),
            Check::new(
                "table3.body_damaged.level",
                "body-damaged level mean 7.52 — damage lives below level 8",
                mean(T3, "Body damaged", "level"),
                within(7.52, 2.5),
            ),
            Check::new(
                "table3.damaged_outsiders.level",
                "damaged outsiders level mean 5.19",
                mean(T3, "Damaged outsiders", "level"),
                within(5.19, 2.0),
            ),
            Check::new(
                "table3.undamaged.quality",
                "undamaged quality mean 14.94",
                mean(T3, "Undamaged", "quality"),
                within(14.94, 0.5),
            ),
            Check::new(
                "table3.damage_below_clean",
                "damaged packets sit well below undamaged ones in level",
                mean_diff(T3, "Undamaged", T3, "Body damaged", "level"),
                Expected::AtLeast(4.0),
            ),
            Check::new(
                "table3.damaged_outsiders.silence",
                "damaged outsiders are marked by high silence (interference)",
                mean(T3, "Damaged outsiders", "silence"),
                Expected::AtLeast(8.0),
            ),
        ],
    }
}

fn figure2() -> TableExpectation {
    // Rows: 11/40/90/150/210 ft (indices 0-4) then 250/280/305/330 ft
    // (indices 5-8). The regime boundary sits between 210 and 250 ft and
    // wobbles with the seed's propagation draws, so checks anchor to rows
    // solidly inside each regime (<= 90 ft reliable, >= 280 ft error),
    // never to the boundary rows themselves.
    let level_at = |i: usize| cell(F2, RowKey::Index(i), "level");
    let loss_at = |i: usize| cell(F2, RowKey::Index(i), "loss_pct");
    TableExpectation {
        paper_table: "Figure 2",
        artifact: "figure2",
        checks: vec![
            Check::new(
                "figure2.reliable.near_loss",
                "negligible loss in the reliable region (level >= 10)",
                loss_at(0),
                Expected::AtMost(2.0),
            ),
            Check::new(
                "figure2.reliable.mid_loss",
                "still negligible loss at 90 ft, mid reliable region",
                loss_at(2),
                Expected::AtMost(2.0),
            ),
            Check::new(
                "figure2.error.onset_loss",
                "tens-of-percent loss once level drops below 8",
                loss_at(6),
                Expected::AtLeast(10.0),
            ),
            Check::new(
                "figure2.error.far_loss",
                "error region persists to the end of the range",
                loss_at(8),
                Expected::AtLeast(10.0),
            ),
            Check::new(
                "figure2.error.level",
                "the error region sits below level 8",
                level_at(7),
                Expected::AtMost(8.0),
            ),
            Check::new(
                "figure2.level.falloff",
                "level falls monotonically with distance overall",
                Quantity::Diff(
                    crate::expect::CellRef {
                        table: F2,
                        row: RowKey::Index(0),
                        column: "level",
                        stat: None,
                    },
                    crate::expect::CellRef {
                        table: F2,
                        row: RowKey::Index(8),
                        column: "level",
                        stat: None,
                    },
                ),
                Expected::AtLeast(12.0),
            ),
            Check::new(
                "figure2.error.damage",
                "damaged packets concentrate in the error region",
                cell(F2, RowKey::Index(8), "damaged_pct"),
                Expected::AtLeast(5.0),
            ),
        ],
    }
}

fn figure3() -> TableExpectation {
    // Rows are one per threshold: index 0 = threshold 14, index 12 = 26.
    let filtered_at = |i: usize| cell(F3, RowKey::Index(i), "filtered_pct");
    TableExpectation {
        paper_table: "Figure 3",
        artifact: "figure3",
        checks: vec![
            Check::new(
                "figure3.below_window",
                "thresholds below the signal window filter nothing",
                filtered_at(0),
                Expected::AtMost(5.0),
            ),
            Check::new(
                "figure3.above_window",
                "thresholds above the signal window filter everything",
                filtered_at(12),
                Expected::AtLeast(99.5),
            ),
            Check::new(
                "figure3.cliff",
                "filtering goes 0 -> 100% across the signal window",
                Quantity::Diff(
                    crate::expect::CellRef {
                        table: F3,
                        row: RowKey::Index(12),
                        column: "filtered_pct",
                        stat: None,
                    },
                    crate::expect::CellRef {
                        table: F3,
                        row: RowKey::Index(0),
                        column: "filtered_pct",
                        stat: None,
                    },
                ),
                Expected::AtLeast(90.0),
            ),
            Check::new(
                "figure3.collision_free",
                "collision-free reception tracks the same transition",
                cell(F3, RowKey::Index(12), "collision_free_pct"),
                Expected::AtLeast(99.0),
            ),
        ],
    }
}

fn table4() -> TableExpectation {
    TableExpectation {
        paper_table: "Table 4",
        artifact: "table4",
        checks: vec![
            Check::new(
                "table4.wall1.attenuation",
                "plaster + wire-mesh wall costs ~5 level units",
                mean_diff(T4, "Air 1", T4, "Wall 1", "level"),
                within(5.0, 0.7),
            ),
            Check::new(
                "table4.wall2.attenuation",
                "concrete-block wall costs ~2 level units",
                mean_diff(T4, "Air 2", T4, "Wall 2", "level"),
                within(2.0, 0.7),
            ),
            Check::new(
                "table4.wall1.quality",
                "quality untouched by the wall (paper: 15.00)",
                mean(T4, "Wall 1", "quality"),
                Expected::AtLeast(14.0),
            ),
            Check::new(
                "table4.wall1.silence",
                "silence unchanged across the wall",
                mean_diff(T4, "Air 1", T4, "Wall 1", "silence"),
                within(0.0, 0.5),
            ),
        ],
    }
}

fn table5() -> TableExpectation {
    TableExpectation {
        paper_table: "Table 5",
        artifact: "table5-7",
        checks: vec![
            Check::new(
                "table5.tx1.loss",
                "strong multi-room locations lose essentially nothing",
                cell(T5, RowKey::Label("Tx1"), "loss"),
                Expected::AtMost(0.02),
            ),
            Check::new(
                "table5.tx5.loss",
                "even the weakest location (Tx5) stays under ~2% loss",
                cell(T5, RowKey::Label("Tx5"), "loss"),
                Expected::AtMost(0.02),
            ),
            Check::new(
                "table5.tx2.wrapper",
                "no wrapper damage at the strong locations",
                cell(T5, RowKey::Label("Tx2"), "wrapper"),
                Expected::AtMost(1.0),
            ),
        ],
    }
}

fn table6() -> TableExpectation {
    TableExpectation {
        paper_table: "Table 6",
        artifact: "table5-7",
        checks: vec![
            Check::new(
                "table6.tx1.level",
                "Tx1 level mean 28.58",
                mean(T6, "Tx1", "level"),
                within(28.58, 1.0),
            ),
            Check::new(
                "table6.tx2.level",
                "Tx2 level mean 26.66",
                mean(T6, "Tx2", "level"),
                within(26.66, 1.5),
            ),
            Check::new(
                "table6.tx4.level",
                "Tx4 level mean 13.81",
                mean(T6, "Tx4", "level"),
                within(13.81, 1.5),
            ),
            Check::new(
                "table6.tx5.level",
                "Tx5 level mean 9.50",
                mean(T6, "Tx5", "level"),
                within(9.50, 1.5),
            ),
            Check::new(
                "table6.ladder",
                "level ladder: each wall/room drops the level further",
                mean_diff(T6, "Tx4", T6, "Tx5", "level"),
                Expected::AtLeast(2.0),
            ),
        ],
    }
}

fn table7() -> TableExpectation {
    TableExpectation {
        paper_table: "Table 7",
        artifact: "table5-7",
        checks: vec![
            Check::new(
                "table7.error_free_share",
                "nearly all Tx5 packets arrive error-free (damage appears \
                 first, and only, at the weakest location — and barely)",
                Quantity::Ratio(
                    crate::expect::CellRef {
                        table: T7,
                        row: RowKey::Label("Error-Free"),
                        column: "packets",
                        stat: None,
                    },
                    crate::expect::CellRef {
                        table: T7,
                        row: RowKey::Label("All"),
                        column: "packets",
                        stat: None,
                    },
                ),
                Expected::AtLeast(0.9),
            ),
            Check::new(
                "table7.all.quality",
                "quality stays high even at the weakest location",
                mean(T7, "All", "quality"),
                Expected::AtLeast(13.0),
            ),
        ],
    }
}

fn table8() -> TableExpectation {
    TableExpectation {
        paper_table: "Table 8",
        artifact: "table8-9",
        checks: vec![
            Check::new(
                "table8.no_body.loss",
                "without the body the link is clean",
                cell(T8, RowKey::Label("No body"), "loss"),
                Expected::AtMost(0.01),
            ),
            Check::new(
                "table8.body.loss",
                "the body converts a clean link into percent-level loss \
                 (paper ~2.5%; this model 6%, see EXPERIMENTS.md)",
                cell(T8, RowKey::Label("Body"), "loss"),
                between(0.02, 0.12),
            ),
            Check::new(
                "table8.body.damage",
                "body-damaged packets appear (paper: 15.5% of received)",
                cell(T8, RowKey::Label("Body"), "body"),
                Expected::AtLeast(5.0),
            ),
            Check::new(
                "table8.received.ratio",
                "received count drops a few percent with the body",
                Quantity::Ratio(
                    crate::expect::CellRef {
                        table: T8,
                        row: RowKey::Label("Body"),
                        column: "received",
                        stat: None,
                    },
                    crate::expect::CellRef {
                        table: T8,
                        row: RowKey::Label("No body"),
                        column: "received",
                        stat: None,
                    },
                ),
                between(0.85, 0.99),
            ),
        ],
    }
}

fn table9() -> TableExpectation {
    TableExpectation {
        paper_table: "Table 9",
        artifact: "table8-9",
        checks: vec![
            Check::new(
                "table9.no_body.level",
                "level without the body 12.55",
                mean(T9, "No body: All Packets", "level"),
                within(12.55, 1.5),
            ),
            Check::new(
                "table9.body.level",
                "level with the body 6.73",
                mean(T9, "Body: All Packets", "level"),
                within(6.73, 1.0),
            ),
            Check::new(
                "table9.body.attenuation",
                "a person costs ~6 level units",
                mean_diff(T9, "No body: All Packets", T9, "Body: All Packets", "level"),
                Expected::AtLeast(4.0),
            ),
            Check::new(
                "table9.body.quality",
                "quality barely moves (paper 15.0 -> 14.95)",
                mean(T9, "Body: All Packets", "quality"),
                Expected::AtLeast(14.0),
            ),
        ],
    }
}

fn table10() -> TableExpectation {
    let silence = |label: &'static str, id, paper, target, tol| {
        Check::new(id, paper, mean(T10, label, "silence"), within(target, tol))
    };
    TableExpectation {
        paper_table: "Table 10",
        artifact: "table10",
        checks: vec![
            silence(
                "Phones off",
                "table10.off.silence",
                "silence 2.40 with phones off",
                2.40,
                1.5,
            ),
            silence(
                "Cluster",
                "table10.cluster.silence",
                "silence 15.45 with the phone cluster",
                15.45,
                1.0,
            ),
            silence(
                "Handsets nearby",
                "table10.handsets.silence",
                "silence 11.33 with handsets nearby",
                11.33,
                1.0,
            ),
            silence(
                "Handsets nearby talking",
                "table10.talking.silence",
                "silence 6.11 with handsets nearby talking",
                6.11,
                1.0,
            ),
            silence(
                "Bases nearby",
                "table10.bases.silence",
                "silence 19.32 with bases nearby",
                19.32,
                1.0,
            ),
            Check::new(
                "table10.level.untouched",
                "level (~28) untouched by narrowband interference",
                mean_diff(T10, "Bases nearby", T10, "Phones off", "level"),
                within(0.0, 1.0),
            ),
            Check::new(
                "table10.quality.untouched",
                "quality (15) untouched by narrowband interference",
                mean(T10, "Cluster", "quality"),
                Expected::AtLeast(14.5),
            ),
        ],
    }
}

fn table11() -> TableExpectation {
    let jam = |label: &'static str, id| {
        Check::new(
            id,
            "jamming spread-spectrum trials lose ~52% of packets",
            cell(T11, RowKey::Label(label), "loss"),
            between(0.35, 0.70),
        )
    };
    TableExpectation {
        paper_table: "Table 11",
        artifact: "table11-13",
        checks: vec![
            Check::new(
                "table11.off.loss",
                "phones off: ~.5% loss",
                cell(T11, RowKey::Label("Phones off"), "loss"),
                Expected::AtMost(0.01),
            ),
            jam("RS base", "table11.rs_base.loss"),
            jam("RS cluster", "table11.rs_cluster.loss"),
            jam("AT&T cluster", "table11.att_cluster.loss"),
            Check::new(
                "table11.rs_remote.loss",
                "the remote cluster is harmless (~0% loss)",
                cell(T11, RowKey::Label("RS remote cluster"), "loss"),
                Expected::AtMost(0.05),
            ),
            Check::new(
                "table11.att_handset.loss",
                "the lone AT&T handset is intermediate (paper 1% loss / 4% \
                 truncated; this model swaps the magnitudes, see \
                 EXPERIMENTS.md)",
                cell(T11, RowKey::Label("AT&T handset"), "loss"),
                between(0.005, 0.12),
            ),
            Check::new(
                "table11.rs_base.truncation_share",
                "in jam trials nearly every received packet is truncated",
                Quantity::Ratio(
                    crate::expect::CellRef {
                        table: T11,
                        row: RowKey::Label("RS base"),
                        column: "truncated",
                        stat: None,
                    },
                    crate::expect::CellRef {
                        table: T11,
                        row: RowKey::Label("RS base"),
                        column: "received",
                        stat: None,
                    },
                ),
                Expected::AtLeast(0.85),
            ),
        ],
    }
}

fn table12() -> TableExpectation {
    TableExpectation {
        paper_table: "Table 12",
        artifact: "table11-13",
        checks: vec![
            Check::new(
                "table12.off.silence",
                "phones off: silence stays at the quiet floor",
                mean(T12, "Phones off", "silence"),
                Expected::AtMost(5.0),
            ),
            Check::new(
                "table12.rs_base.silence",
                "jam-trial silence is high (paper 30.7-39.0; this model sits \
                 ~5 units lower, see EXPERIMENTS.md)",
                mean(T12, "RS base", "silence"),
                between(23.0, 31.0),
            ),
            Check::new(
                "table12.rs_base.quality",
                "jam-trial quality collapses",
                mean(T12, "RS base", "quality"),
                Expected::AtMost(12.0),
            ),
            Check::new(
                "table12.quality.drop",
                "quality drops sharply from the quiet to the jammed trial",
                mean_diff(T12, "Phones off", T12, "RS base", "quality"),
                Expected::AtLeast(3.0),
            ),
        ],
    }
}

fn table13() -> TableExpectation {
    TableExpectation {
        paper_table: "Table 13",
        artifact: "table11-13",
        checks: vec![
            Check::new(
                "table13.truncated.quality",
                "truncated quality mean 8.76 — very low quality predicts \
                 truncation",
                mean(T13, "Truncated", "quality"),
                within(8.76, 2.0),
            ),
            Check::new(
                "table13.body_damaged.quality",
                "body-damaged quality mean 13.62 — high level with mediocre \
                 quality predicts bit errors",
                mean(T13, "Body damaged", "quality"),
                within(13.62, 1.5),
            ),
            Check::new(
                "table13.body_damaged.level",
                "body-damaged level mean 29.89 (high!)",
                mean(T13, "Body damaged", "level"),
                within(29.89, 2.5),
            ),
            Check::new(
                "table13.undamaged.quality",
                "undamaged packets keep full quality even among jammers",
                mean(T13, "Undamaged", "quality"),
                Expected::AtLeast(14.0),
            ),
            Check::new(
                "table13.truncated.share",
                "truncation is the dominant damage class in the pooled \
                 active-phone packets",
                Quantity::Ratio(
                    crate::expect::CellRef {
                        table: T13,
                        row: RowKey::Label("Truncated"),
                        column: "packets",
                        stat: None,
                    },
                    crate::expect::CellRef {
                        table: T13,
                        row: RowKey::Label("All test"),
                        column: "packets",
                        stat: None,
                    },
                ),
                between(0.25, 0.55),
            ),
        ],
    }
}

fn table14() -> TableExpectation {
    TableExpectation {
        paper_table: "Table 14",
        artifact: "table14",
        checks: vec![
            Check::new(
                "table14.without.silence",
                "silence 3.35 without interfering transmitters",
                mean(T14, "Without interference", "silence"),
                within(3.35, 1.5),
            ),
            Check::new(
                "table14.with.silence",
                "silence 13.62 with interfering transmitters",
                mean(T14, "With interference", "silence"),
                within(13.62, 2.5),
            ),
            Check::new(
                "table14.silence.jump",
                "interfering WaveLAN units announce themselves in silence",
                mean_diff(
                    T14,
                    "With interference",
                    T14,
                    "Without interference",
                    "silence",
                ),
                Expected::AtLeast(8.0),
            ),
            Check::new(
                "table14.level.untouched",
                "level unchanged by the competing units",
                mean_diff(
                    T14,
                    "With interference",
                    T14,
                    "Without interference",
                    "level",
                ),
                within(0.0, 1.0),
            ),
            Check::new(
                "table14.quality.untouched",
                "quality unchanged by the competing units",
                mean(T14, "With interference", "quality"),
                Expected::AtLeast(14.0),
            ),
        ],
    }
}

/// The full corpus: one [`TableExpectation`] per paper table/figure, in
/// paper order. The registry-completeness test holds this list and the
/// registry's `paper_tables` metadata to a one-to-one match.
pub fn corpus() -> Vec<TableExpectation> {
    vec![
        table2(),
        figure1(),
        table3(),
        figure2(),
        figure3(),
        table4(),
        table5(),
        table6(),
        table7(),
        table8(),
        table9(),
        table10(),
        table11(),
        table12(),
        table13(),
        table14(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn check_ids_are_unique() {
        let mut seen = HashSet::new();
        for table in corpus() {
            for check in &table.checks {
                assert!(seen.insert(check.id), "duplicate check id {}", check.id);
            }
        }
    }

    #[test]
    fn every_table_has_checks_and_a_registered_artifact() {
        for table in corpus() {
            assert!(
                !table.checks.is_empty(),
                "{} has no checks",
                table.paper_table
            );
            assert!(
                wavelan_core::registry::find(table.artifact).is_some(),
                "{} references unknown artifact {}",
                table.paper_table,
                table.artifact
            );
        }
    }
}
