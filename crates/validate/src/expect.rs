//! The expectation vocabulary: how the corpus names a quantity inside a
//! structured [`Report`](wavelan_analysis::Report) and what range the
//! paper says it should land in.
//!
//! A [`Check`] is one falsifiable claim: a [`Quantity`] (a single cell, a
//! difference, or a ratio of two cells) plus an [`Expected`] band. Checks
//! are grouped per paper table/figure into [`TableExpectation`]s, which is
//! the unit the harness reports a verdict for.

use wavelan_analysis::{Report, StatField, Table};
use wavelan_core::Scale;

/// How a check's row is located inside its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKey {
    /// Match the first column's text label (trimmed, so indented sub-rows
    /// such as `  Outsiders` still match — use [`RowKey::Index`] when a
    /// label repeats).
    Label(&'static str),
    /// Zero-based row index, for tables whose rows have no textual label
    /// (the figures).
    Index(usize),
}

/// A reference to one numeric value inside one table of a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRef {
    /// Heading prefix identifying the table, colon included so `"Table 1:"`
    /// cannot match `Table 10` (see
    /// [`Report::table_by_heading`](wavelan_analysis::Report::table_by_heading)).
    pub table: &'static str,
    /// The row.
    pub row: RowKey,
    /// Machine-readable column name (see
    /// [`Table::column_index`](wavelan_analysis::Table::column_index)).
    pub column: &'static str,
    /// For `↓ μ (σ) ↑` signal-statistics cells, which field to read; `None`
    /// for plain numeric cells.
    pub stat: Option<StatField>,
}

impl CellRef {
    fn locate<'r>(&self, report: &'r Report) -> Result<&'r [wavelan_analysis::Cell], String> {
        let table = report
            .table_by_heading(self.table)
            .ok_or_else(|| format!("no table with heading prefix {:?}", self.table))?;
        match self.row {
            RowKey::Label(label) => table
                .row_by_label(label)
                .ok_or_else(|| format!("{:?} has no row labelled {label:?}", self.table)),
            RowKey::Index(i) => table
                .rows
                .get(i)
                .map(Vec::as_slice)
                .ok_or_else(|| format!("{:?} has no row index {i}", self.table)),
        }
    }

    fn column_index(&self, report: &Report) -> Result<usize, String> {
        let table: &Table = report
            .table_by_heading(self.table)
            .ok_or_else(|| format!("no table with heading prefix {:?}", self.table))?;
        table
            .column_index(self.column)
            .ok_or_else(|| format!("{:?} has no column {:?}", self.table, self.column))
    }

    /// Resolves the referenced value in `report`, or explains what was
    /// missing.
    pub fn resolve(&self, report: &Report) -> Result<f64, String> {
        let row = self.locate(report)?;
        let idx = self.column_index(report)?;
        let cell = row
            .get(idx)
            .ok_or_else(|| format!("{:?} row is short of column {:?}", self.table, self.column))?;
        match self.stat {
            Some(field) => cell.stat(field).ok_or_else(|| {
                format!(
                    "{:?} column {:?} is not a stats cell",
                    self.table, self.column
                )
            }),
            None => cell
                .number()
                .ok_or_else(|| format!("{:?} column {:?} is not numeric", self.table, self.column)),
        }
    }
}

/// The measured quantity a check constrains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quantity {
    /// One cell's value.
    Cell(CellRef),
    /// `a - b` — ordering and monotonicity claims ("the wall costs ~5
    /// levels", "level falls with distance").
    Diff(CellRef, CellRef),
    /// `a / b` — composition claims ("most spread-spectrum damage is
    /// truncation"). Resolves to an error when `b` is zero.
    Ratio(CellRef, CellRef),
}

impl Quantity {
    /// Resolves the quantity against one run's report.
    pub fn resolve(&self, report: &Report) -> Result<f64, String> {
        match self {
            Quantity::Cell(c) => c.resolve(report),
            Quantity::Diff(a, b) => Ok(a.resolve(report)? - b.resolve(report)?),
            Quantity::Ratio(a, b) => {
                let denom = b.resolve(report)?;
                if denom == 0.0 {
                    return Err(format!("ratio denominator {:?} is zero", b.column));
                }
                Ok(a.resolve(report)? / denom)
            }
        }
    }
}

/// The band the paper's published value puts on a quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expected {
    /// Within `tol` of `target` (absolute). Twice the tolerance is the
    /// warn band.
    Within {
        /// The paper's published value.
        target: f64,
        /// Absolute pass tolerance.
        tol: f64,
    },
    /// Inside `[min, max]`; the warn band extends half the interval width
    /// beyond each end.
    Between {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// At most this value (hard bound — no warn band).
    AtMost(f64),
    /// At least this value (hard bound — no warn band).
    AtLeast(f64),
}

/// Outcome of one check, one table, or a whole fidelity run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Within the stated band.
    Pass,
    /// Outside the stated band but inside the warn band — drifting, not
    /// broken.
    Warn,
    /// Outside the warn band, the quantity failed to resolve, or a table
    /// has no checks runnable at this scale.
    Fail,
    /// Not evaluated at this scale (too few packets to be meaningful).
    Skip,
}

impl Verdict {
    /// Lowercase name, used in both JSON and text output.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Warn => "warn",
            Verdict::Fail => "fail",
            Verdict::Skip => "skip",
        }
    }
}

impl Expected {
    /// Judges an observed (seed-averaged) value against the band.
    pub fn judge(&self, observed: f64) -> Verdict {
        match *self {
            Expected::Within { target, tol } => {
                let dev = (observed - target).abs();
                if dev <= tol {
                    Verdict::Pass
                } else if dev <= 2.0 * tol {
                    Verdict::Warn
                } else {
                    Verdict::Fail
                }
            }
            Expected::Between { min, max } => {
                if (min..=max).contains(&observed) {
                    Verdict::Pass
                } else {
                    let slack = (max - min) / 2.0;
                    if observed >= min - slack && observed <= max + slack {
                        Verdict::Warn
                    } else {
                        Verdict::Fail
                    }
                }
            }
            Expected::AtMost(max) => {
                if observed <= max {
                    Verdict::Pass
                } else {
                    Verdict::Fail
                }
            }
            Expected::AtLeast(min) => {
                if observed >= min {
                    Verdict::Pass
                } else {
                    Verdict::Fail
                }
            }
        }
    }

    /// The band as text, for reports (`"14.15 ± 2.5"`, `"[0.35, 0.7]"`).
    pub fn describe(&self) -> String {
        match *self {
            Expected::Within { target, tol } => format!("{target} ± {tol}"),
            Expected::Between { min, max } => format!("[{min}, {max}]"),
            Expected::AtMost(max) => format!("<= {max}"),
            Expected::AtLeast(min) => format!(">= {min}"),
        }
    }
}

/// One falsifiable claim about a reproduced table.
#[derive(Debug, Clone)]
pub struct Check {
    /// Stable machine id, unique within the corpus (`table3.all.level`).
    pub id: &'static str,
    /// What the paper publishes, verbatim enough to audit the band.
    pub paper: &'static str,
    /// The measured quantity.
    pub quantity: Quantity,
    /// The band it must land in.
    pub expected: Expected,
    /// Smallest scale at which the claim is statistically meaningful;
    /// below it the check reports [`Verdict::Skip`]. Claims about
    /// rare-event counts (truncations in a quiet room) need paper-length
    /// trials; signal-level means are stable even at smoke scale.
    pub min_scale: Scale,
}

impl Check {
    /// A check evaluated at every scale.
    pub fn new(
        id: &'static str,
        paper: &'static str,
        quantity: Quantity,
        expected: Expected,
    ) -> Check {
        Check {
            id,
            paper,
            quantity,
            expected,
            min_scale: Scale::Smoke,
        }
    }

    /// Requires at least `scale` to evaluate (skip below it).
    pub fn min_scale(mut self, scale: Scale) -> Check {
        self.min_scale = scale;
        self
    }

    /// Whether the check runs at `scale`.
    pub fn runs_at(&self, scale: Scale) -> bool {
        scale_rank(scale) >= scale_rank(self.min_scale)
    }
}

fn scale_rank(scale: Scale) -> u8 {
    match scale {
        Scale::Smoke => 0,
        Scale::Reduced => 1,
        Scale::Paper => 2,
    }
}

/// All checks for one paper table or figure, resolved against one registry
/// artifact.
#[derive(Debug, Clone)]
pub struct TableExpectation {
    /// The paper label (`"Table 2"` … `"Figure 3"`) — the key the
    /// registry's `paper_tables` metadata must mirror.
    pub paper_table: &'static str,
    /// The registry artifact whose report carries the table.
    pub artifact: &'static str,
    /// The claims.
    pub checks: Vec<Check>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_judges_pass_warn_fail() {
        let e = Expected::Within {
            target: 10.0,
            tol: 1.0,
        };
        assert_eq!(e.judge(10.9), Verdict::Pass);
        assert_eq!(e.judge(11.5), Verdict::Warn);
        assert_eq!(e.judge(12.5), Verdict::Fail);
    }

    #[test]
    fn between_warn_band_extends_half_width() {
        let e = Expected::Between {
            min: 10.0,
            max: 14.0,
        };
        assert_eq!(e.judge(12.0), Verdict::Pass);
        assert_eq!(e.judge(9.0), Verdict::Warn);
        assert_eq!(e.judge(16.0), Verdict::Warn);
        assert_eq!(e.judge(7.0), Verdict::Fail);
    }

    #[test]
    fn bounds_are_hard() {
        assert_eq!(Expected::AtMost(5.0).judge(5.0), Verdict::Pass);
        assert_eq!(Expected::AtMost(5.0).judge(5.1), Verdict::Fail);
        assert_eq!(Expected::AtLeast(5.0).judge(4.9), Verdict::Fail);
    }

    #[test]
    fn min_scale_gates_evaluation() {
        let c = Check::new(
            "x",
            "",
            Quantity::Cell(CellRef {
                table: "T",
                row: RowKey::Index(0),
                column: "c",
                stat: None,
            }),
            Expected::AtLeast(0.0),
        )
        .min_scale(Scale::Paper);
        assert!(!c.runs_at(Scale::Smoke));
        assert!(!c.runs_at(Scale::Reduced));
        assert!(c.runs_at(Scale::Paper));
    }
}
