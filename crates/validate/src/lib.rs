#![warn(missing_docs)]

//! # wavelan-validate
//!
//! Paper-fidelity validation: does this reproduction still land where
//! Eckhardt & Steenkiste's published numbers say it should?
//!
//! The golden-transcript tests pin one seed's exact bytes — they catch
//! regressions but shatter on every legitimate output change and say
//! nothing about closeness to the paper. This crate instead encodes the
//! paper's Tables 2–14 and Figures 1–3 as a typed expectation corpus
//! ([`corpus`]): each [`Check`] names a quantity inside a structured
//! [`Report`](wavelan_analysis::Report) (a cell, a difference, or a
//! ratio — always scale-free) and the band the paper puts on it, with the
//! tolerance calibration documented in EXPERIMENTS.md ("Fidelity"
//! section).
//!
//! The harness ([`run`]) resolves every expectation against the
//! experiment registry, runs each artifact across N consecutive seeds,
//! judges the across-seed mean of each quantity, and emits a
//! [`FidelityReport`] with per-table pass/warn/fail verdicts — `repro
//! --validate` renders it as text or JSON, and `ci.sh` gates on it
//! (`FIDELITY.json`).

pub mod corpus;
pub mod expect;
pub mod harness;

pub use corpus::corpus;
pub use expect::{Check, Expected, Quantity, RowKey, TableExpectation, Verdict};
pub use harness::{run, CheckResult, Config, Counts, FidelityReport, Observed, TableResult};
