//! The corpus-completeness contract: the registry's `paper_tables`
//! metadata and the expectation corpus must agree exactly, in both
//! directions — an artifact claiming a paper table the corpus doesn't
//! check is an unguarded reproduction, and a corpus entry no artifact
//! claims can never run.

use std::collections::BTreeSet;
use wavelan_core::registry;
use wavelan_validate::corpus;

#[test]
fn corpus_and_registry_match_one_to_one() {
    let registry_side: BTreeSet<(&str, &str)> = registry::paper_table_index().into_iter().collect();
    let corpus_side: BTreeSet<(&str, &str)> = corpus()
        .iter()
        .map(|t| (t.paper_table, t.artifact))
        .collect();

    let unguarded: Vec<_> = registry_side.difference(&corpus_side).collect();
    assert!(
        unguarded.is_empty(),
        "registry artifacts claim paper tables the corpus never checks: {unguarded:?}"
    );
    let orphaned: Vec<_> = corpus_side.difference(&registry_side).collect();
    assert!(
        orphaned.is_empty(),
        "corpus entries reference paper tables no registry artifact claims: {orphaned:?}"
    );
}

#[test]
fn every_paper_table_and_figure_is_covered() {
    // Tables 2-14 and Figures 1-3, by name — the acceptance floor: a
    // registry refactor must not silently drop a paper artifact from
    // validation.
    let covered: BTreeSet<&str> = corpus().iter().map(|t| t.paper_table).collect();
    for n in 2..=14 {
        let label = format!("Table {n}");
        assert!(
            covered.contains(label.as_str()),
            "no expectations for {label}"
        );
    }
    for n in 1..=3 {
        let label = format!("Figure {n}");
        assert!(
            covered.contains(label.as_str()),
            "no expectations for {label}"
        );
    }
}

#[test]
fn extension_artifacts_claim_no_paper_tables() {
    // Extensions go beyond the paper's evaluation; the fidelity corpus is
    // only about the paper's own artifacts.
    for e in registry::REGISTRY {
        let is_paper =
            e.artifact_name().starts_with("table") || e.artifact_name().starts_with("figure");
        assert_eq!(
            !e.paper_tables().is_empty(),
            is_paper,
            "{} paper_tables metadata looks wrong",
            e.artifact_name()
        );
    }
}
