//! The harness's own determinism contract: the same configuration must
//! serialize to bit-identical `FidelityReport` JSON on every run, at any
//! worker count. CI diffs `FIDELITY.json` across machines and the
//! multi-seed aggregation must not introduce order- or timing-dependent
//! bytes.

use wavelan_analysis::json::to_string_pretty;
use wavelan_core::{Executor, Scale};
use wavelan_validate::{run, Config};

#[test]
fn three_seed_validate_is_bit_identical_across_runs_and_workers() {
    let config = Config {
        scale: Scale::Smoke,
        base_seed: 1996,
        seeds: 3,
    };
    let serial = to_string_pretty(&run(&config, &Executor::serial()));
    let parallel = to_string_pretty(&run(&config, &Executor::new(2)));
    assert_eq!(
        serial, parallel,
        "FidelityReport JSON differs between runs / worker counts"
    );
    assert!(serial.contains("\"base_seed\": 1996"));
    assert!(serial.contains("\"seeds\": 3"));
}
