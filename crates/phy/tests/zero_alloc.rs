//! Steady-state reception through `RxScratch` performs **zero heap
//! allocations** — the acceptance criterion for the allocation-free hot
//! path. A counting global allocator observes every alloc/realloc; after a
//! warm-up phase (memo tables boxed, buffers grown to steady-state
//! capacity) the measured window must allocate nothing at all.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use wavelan_phy::interference::{Emission, InterferenceKind};
use wavelan_phy::link::{LinkModel, PacketOutcome};
use wavelan_phy::scratch::RxScratch;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The paper's 1,070-byte test packet.
const LEN: u64 = 8_560;

/// A stationary bursty-interference channel: fixed emission set every
/// packet (the timeline cache's steady state) with enough segments that
/// the per-segment math actually runs.
fn emissions() -> Vec<Emission> {
    let mut out = Vec::new();
    // Leave the preamble clean so acquisition succeeds; from bit 400 on,
    // bursts alternate with clean gaps.
    let mut start = 400;
    while start < LEN {
        out.push(Emission {
            start_bit: start,
            end_bit: (start + 700).min(LEN),
            raw_dbm: -72.0,
            kind: InterferenceKind::WidebandInBand,
        });
        start += 1_400;
    }
    out
}

#[test]
fn steady_state_receive_is_allocation_free() {
    let model = LinkModel::default();
    let em = emissions();
    let mut scratch = RxScratch::new();
    // Seed the pool with a buffer large enough for any plausible error
    // count, so capacity growth cannot masquerade as steady state.
    scratch.recycle_error_buf(Vec::with_capacity(LEN as usize));
    let mut rng = StdRng::seed_from_u64(1996);

    let run = |scratch: &mut RxScratch, rng: &mut StdRng, iters: usize| {
        let mut received = 0u64;
        for _ in 0..iters {
            match model.receive_with(-62.0, &em, LEN, rng, scratch) {
                PacketOutcome::Received(mut r) => {
                    received += 1;
                    scratch.recycle_error_buf(std::mem::take(&mut r.error_bits));
                }
                PacketOutcome::Lost(_) => {}
            }
        }
        received
    };

    // Warm-up: memo tables are boxed, the timeline is built, buffers grow.
    run(&mut scratch, &mut rng, 200);

    // Measured window: not a single allocation.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let received = run(&mut scratch, &mut rng, 1_000);
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(received > 500, "channel too hostile: {received}/1000");
    assert_eq!(
        after - before,
        0,
        "steady-state receive_with allocated {} times in 1000 packets",
        after - before
    );
}
