//! Validates the fast-path closed-form error rates against the slow-path
//! chip-level modem simulation (DQPSK → Barker-11 spreading → AWGN →
//! correlation despreading → DQPSK demodulation).
//!
//! This is the evidence that the packet-level experiments rest on a real
//! waveform model rather than free-floating formulas.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wavelan_phy::baseband::add_awgn;
use wavelan_phy::math::db_to_linear;
use wavelan_phy::modulation::{dqpsk_ber, DqpskDemodulator, DqpskModulator};
use wavelan_phy::spreading::SpreadingCode;

/// Runs the full chip-level chain at a given chip-domain Es/N0 and measures
/// the bit error rate over `n_bytes` of payload.
fn measure_chip_level_ber(ebn0_db: f64, n_bytes: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let code = SpreadingCode::barker11();
    let data: Vec<u8> = (0..n_bytes).map(|i| (i * 131 + 7) as u8).collect();

    let mut modulator = DqpskModulator::new();
    let symbols = modulator.modulate_bytes(&data);
    let mut chips = code.spread(&symbols);

    // Symbol energy is 1 (unit phasors). Each bit carries Es/2.
    // After spreading, each chip has energy 1 as well; the correlator
    // averages 11 chips, so chip-domain noise n0 relates to symbol-domain
    // Es/N0 by the spreading factor. Work backwards: we want a given Eb/N0
    // in the decision (despread) domain; Es = 2·Eb, and despreading reduces
    // the per-sample noise power by 11.
    let ebn0 = db_to_linear(ebn0_db);
    let esn0_despread = 2.0 * ebn0;
    let n0_chip = 11.0 / esn0_despread;
    add_awgn(&mut rng, &mut chips, n0_chip);

    let despread = code.despread(&chips);
    let mut demod = DqpskDemodulator::new();
    let decoded = demod.demodulate_bytes(&despread);

    let bit_errors: u32 = data
        .iter()
        .zip(&decoded)
        .map(|(a, b)| (a ^ b).count_ones())
        .sum();
    f64::from(bit_errors) / (n_bytes as f64 * 8.0)
}

#[test]
fn closed_form_matches_simulation_at_moderate_snr() {
    // Compare at operating points where a simulation of reasonable size has
    // enough errors to estimate the rate. The closed form is an engineering
    // approximation (≈2.3 dB differential penalty), so allow a factor-of-two
    // band — equivalent to a fraction of a dB, far tighter than any
    // calibration decision it feeds.
    for (ebn0_db, n_bytes) in [(5.0, 50_000), (7.0, 80_000), (9.0, 150_000)] {
        let simulated = measure_chip_level_ber(ebn0_db, n_bytes, 42);
        let predicted = dqpsk_ber(db_to_linear(ebn0_db));
        assert!(
            simulated < predicted * 2.0 && simulated > predicted / 2.0,
            "at {ebn0_db} dB: simulated {simulated:.3e}, predicted {predicted:.3e}"
        );
    }
}

#[test]
fn clean_channel_is_error_free_end_to_end() {
    let ber = measure_chip_level_ber(20.0, 30_000, 7);
    assert_eq!(ber, 0.0);
}

#[test]
fn ber_degrades_monotonically_with_noise() {
    let mut prev = -1.0;
    for ebn0_db in [9.0, 7.0, 5.0, 3.0, 1.0] {
        let ber = measure_chip_level_ber(ebn0_db, 40_000, 11);
        assert!(
            ber >= prev,
            "BER not monotone at {ebn0_db} dB: {ber} < {prev}"
        );
        prev = ber;
    }
}
