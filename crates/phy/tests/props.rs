//! Property-based tests for the PHY substrates.

use proptest::prelude::*;
use wavelan_phy::agc::{level_units_to_dbm, power_to_level_units, AgcModel};
use wavelan_phy::interference::{DutyCycle, Emission, InterferenceKind, Interferer};
use wavelan_phy::link::{LinkModel, PacketOutcome};
use wavelan_phy::math::{db_to_linear, dbm_sum, linear_to_db, q};
use wavelan_phy::modulation::{dqpsk_ber, DqpskDemodulator, DqpskModulator};
use wavelan_phy::pathloss::LogDistance;
use wavelan_phy::spreading::SpreadingCode;

proptest! {
    /// dB ↔ linear conversion is a bijection on the sane range.
    #[test]
    fn db_linear_round_trip(db in -120.0f64..40.0) {
        let back = linear_to_db(db_to_linear(db));
        prop_assert!((back - db).abs() < 1e-9);
    }

    /// Power sums in dBm dominate their largest term and never exceed
    /// largest + 10·log10(n).
    #[test]
    fn dbm_sum_bounds(powers in proptest::collection::vec(-120.0f64..0.0, 1..8)) {
        let max = powers.iter().cloned().fold(f64::MIN, f64::max);
        let sum = dbm_sum(powers.iter().cloned());
        prop_assert!(sum >= max - 1e-9);
        prop_assert!(sum <= max + 10.0 * (powers.len() as f64).log10() + 1e-9);
    }

    /// Q is a valid decreasing tail probability.
    #[test]
    fn q_is_monotone_probability(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(q(lo) >= q(hi));
        prop_assert!((0.0..=1.0).contains(&q(a)));
    }

    /// DQPSK BER is a decreasing function of Eb/N0, bounded by 1/2.
    #[test]
    fn dqpsk_ber_monotone(ebn0_db in -5.0f64..20.0, delta in 0.1f64..10.0) {
        let lo = dqpsk_ber(db_to_linear(ebn0_db));
        let hi = dqpsk_ber(db_to_linear(ebn0_db + delta));
        prop_assert!(hi <= lo);
        prop_assert!(lo <= 0.5 + 1e-12);
        prop_assert!(hi > 0.0);
    }

    /// The modem chain is the identity on clean channels for any payload.
    #[test]
    fn dqpsk_identity(data in proptest::collection::vec(any::<u8>(), 1..256)) {
        let symbols = DqpskModulator::new().modulate_bytes(&data);
        prop_assert_eq!(DqpskDemodulator::new().demodulate_bytes(&symbols), data);
    }

    /// Spreading/despreading is the identity for any code in the family.
    #[test]
    fn spreading_identity(
        seed in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let code = SpreadingCode::family(1, 11, seed | 1).remove(0);
        let symbols = DqpskModulator::new().modulate_bytes(&data);
        let back = code.despread(&code.spread(&symbols));
        for (a, b) in symbols.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Path loss is monotone in distance for any positive exponent.
    #[test]
    fn pathloss_monotone(n in 1.5f64..4.5, d1 in 0.5f64..100.0, d2 in 0.5f64..100.0) {
        let model = LogDistance::indoor(915e6, n);
        let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.loss_db(hi) >= model.loss_db(lo));
    }

    /// AGC level mapping round-trips and clamps correctly.
    #[test]
    fn agc_level_round_trip(units in 0.0f64..63.0) {
        let back = power_to_level_units(level_units_to_dbm(units));
        prop_assert!((back - units).abs() < 1e-9);
    }

    /// Both miss-probability mechanisms are monotone and valid probabilities.
    #[test]
    fn miss_probabilities_behave(x in -20.0f64..30.0, d in 0.01f64..10.0) {
        let agc = AgcModel::default();
        let p1a = agc.agc_miss_probability(level_units_to_dbm(x.max(0.0)));
        let p1b = agc.agc_miss_probability(level_units_to_dbm(x.max(0.0) + d));
        prop_assert!(p1b <= p1a + 1e-12);
        let p2a = agc.corr_miss_probability(x);
        let p2b = agc.corr_miss_probability(x + d);
        prop_assert!(p2b <= p2a + 1e-12);
        for p in [p1a, p1b, p2a, p2b] {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    /// Interferer emissions are sorted, disjoint, within the packet, and at
    /// most one per frame period.
    #[test]
    fn emissions_well_formed(
        period in 1_000u64..30_000,
        on_frac in 0.05f64..0.95,
        len in 1_000u64..20_000,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let on = ((period as f64 * on_frac) as u64).max(1);
        let i = Interferer {
            kind: InterferenceKind::WidebandInBand,
            power_dbm: -50.0,
            duty: DutyCycle::Burst { period_bits: period, on_bits: on },
            burst_sigma_db: 1.0,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let es = i.emissions(len, &mut rng);
        for e in &es {
            prop_assert!(e.start_bit < e.end_bit);
            prop_assert!(e.end_bit <= len);
            prop_assert!(e.end_bit - e.start_bit <= on);
        }
        for w in es.windows(2) {
            prop_assert!(w[0].end_bit <= w[1].start_bit);
        }
    }

    /// The cached hot path (`receive_with` + `RxScratch`) is bit-identical
    /// to the uncached reference `receive`: same outcome (every field, every
    /// f64) and the same RNG draw sequence, across randomized signal levels,
    /// emission sets, and seeds. The scratch persists across cases, so the
    /// memo tables carry state from *other* inputs — exactly the steady
    /// state the simulator runs in.
    #[test]
    fn cached_receive_is_bit_identical(
        signal in -95.0f64..-40.0,
        emission_specs in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, -95.0f64..-40.0, 0usize..4),
            0..5,
        ),
        len in 100u64..10_000,
        repeats in 1usize..4,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        use wavelan_phy::scratch::RxScratch;
        thread_local! {
            static SCRATCH: std::cell::RefCell<RxScratch> =
                std::cell::RefCell::new(RxScratch::new());
        }
        let model = LinkModel::default();
        let kinds = [
            InterferenceKind::WidebandInBand,
            InterferenceKind::NarrowbandInBand,
            InterferenceKind::OutOfBand,
            InterferenceKind::WaveLan,
        ];
        let em: Vec<Emission> = emission_specs
            .iter()
            .map(|&(a, b, power, k)| {
                let s = (a * len as f64) as u64;
                let e = (b * len as f64) as u64;
                let (s, e) = if s <= e { (s, e) } else { (e, s) };
                Emission {
                    start_bit: s,
                    end_bit: (e + 1).min(len),
                    raw_dbm: power,
                    kind: kinds[k],
                }
            })
            .collect();
        // Repeat the same packet so the timeline cache actually hits.
        for rep in 0..repeats {
            let mut rng_ref = rand::rngs::StdRng::seed_from_u64(seed ^ rep as u64);
            let mut rng_hot = rng_ref.clone();
            let reference = model.receive(signal, &em, len, &mut rng_ref);
            let cached = SCRATCH.with(|s| {
                model.receive_with(signal, &em, len, &mut rng_hot, &mut s.borrow_mut())
            });
            prop_assert_eq!(&reference, &cached);
            // Same number of draws consumed: the streams stay aligned.
            prop_assert_eq!(rng_ref.gen::<u64>(), rng_hot.gen::<u64>());
        }
    }

    /// The link model never produces out-of-range outputs, whatever the
    /// channel: error positions within delivered bits, metrics in field
    /// ranges, truncation within the packet.
    #[test]
    fn link_outputs_always_valid(
        signal in -95.0f64..-40.0,
        int_power in -95.0f64..-40.0,
        len in 100u64..10_000,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let model = LinkModel::default();
        let em = [Emission {
            start_bit: 0,
            end_bit: len / 2,
            raw_dbm: int_power,
            kind: InterferenceKind::WidebandInBand,
        }];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match model.receive(signal, &em, len, &mut rng) {
            PacketOutcome::Lost(_) => {}
            PacketOutcome::Received(r) => {
                let delivered = r.delivered_bits(len);
                prop_assert!(delivered <= len);
                if let Some(t) = r.truncated_at_bit {
                    prop_assert!(t <= len);
                }
                for w in r.error_bits.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
                if let Some(&last) = r.error_bits.last() {
                    prop_assert!(last < delivered);
                }
                prop_assert!(r.metrics.level.value() <= 63);
                prop_assert!(r.metrics.silence.value() <= 63);
                prop_assert!((1..=15).contains(&r.metrics.quality));
                prop_assert!(r.metrics.antenna <= 1);
            }
        }
    }
}
