//! Small-scale fading: a deterministic two-ray multipath ripple and lognormal
//! shadowing.
//!
//! Figure 1 of the paper shows signal level falling smoothly with distance
//! *except* for dips "at six and thirty feet ... probably due to multipath
//! interference ... likely to be particular to the room where the measurements
//! were taken". We reproduce the mechanism, not the specific room: a two-ray
//! model (direct path plus one reflection off a nearby surface) produces
//! destructive-interference dips whose positions follow from the geometry.
//! With the default reflector offset of 1.25 m the dips land near 5.7 ft and
//! 30.7 ft — deliberately close to the paper's, to show the mechanism accounts
//! for the observation.
//!
//! Lognormal shadowing models everything else that changes when "slight
//! variations of receiver position, orientation, and obstacles" occur between
//! trials (the paper's Table 3 aggregation).

use crate::baseband::gaussian;
use rand::Rng;

/// Two-ray (direct + single reflection) multipath model.
///
/// The reflected ray travels `√(d² + 4h²)` for a reflector plane offset `h`
/// from the line between the antennas; it arrives attenuated by the extra
/// distance and by the reflection coefficient, and phase-shifted by the path
/// difference. The composite amplitude ripples with distance.
#[derive(Debug, Clone, Copy)]
pub struct TwoRay {
    /// Perpendicular offset of the reflecting surface, meters.
    pub reflector_offset_m: f64,
    /// Reflection coefficient (negative: phase inversion on reflection).
    pub reflection_coeff: f64,
    /// Carrier wavelength, meters (≈ 0.3277 m at 915 MHz).
    pub wavelength_m: f64,
}

impl TwoRay {
    /// The default lecture-hall geometry used for the Figure 1 reproduction.
    pub fn lecture_hall() -> TwoRay {
        TwoRay {
            reflector_offset_m: 1.25,
            reflection_coeff: -0.6,
            wavelength_m: 299_792_458.0 / crate::CARRIER_HZ,
        }
    }

    /// Multipath gain relative to the direct ray alone, in dB (≤ ~+3, ≥ ~−12).
    pub fn gain_db(&self, d_m: f64) -> f64 {
        let d = d_m.max(0.1);
        let h2 = 4.0 * self.reflector_offset_m * self.reflector_offset_m;
        let d_refl = (d * d + h2).sqrt();
        let delta = d_refl - d;
        let phase = 2.0 * std::f64::consts::PI * delta / self.wavelength_m;
        // Reflected amplitude relative to direct: coefficient × (d / d_refl)
        // (amplitude falls as 1/distance).
        let rel = self.reflection_coeff * (d / d_refl);
        let re = 1.0 + rel * phase.cos();
        let im = rel * phase.sin();
        let gain = (re * re + im * im).sqrt();
        // Clamp pathological deep nulls; a real receiver with antenna
        // diversity never sees a perfect null on both antennas.
        crate::math::linear_to_db(gain * gain).clamp(-12.0, 3.0)
    }

    /// Distances (in meters, ascending) at which destructive dips occur, i.e.
    /// where the path difference equals an integer number of wavelengths
    /// (the reflection coefficient being negative). Useful for tests and for
    /// annotating the Figure 1 reproduction.
    pub fn dip_distances_m(&self, max_m: f64) -> Vec<f64> {
        let h2 = 4.0 * self.reflector_offset_m * self.reflector_offset_m;
        let lambda = self.wavelength_m;
        let mut dips = Vec::new();
        for k in 1..1000 {
            let k = f64::from(k);
            let d = (h2 - k * k * lambda * lambda) / (2.0 * k * lambda);
            if d <= 0.1 {
                break;
            }
            if d <= max_m {
                dips.push(d);
            }
        }
        dips.sort_by(|a, b| a.partial_cmp(b).unwrap());
        dips
    }
}

/// Lognormal shadowing: a Gaussian perturbation in dB, drawn once per
/// placement (slow fading).
#[derive(Debug, Clone, Copy)]
pub struct Shadowing {
    /// Standard deviation of the dB perturbation.
    pub sigma_db: f64,
}

impl Shadowing {
    /// Typical mild indoor shadowing for a static link.
    pub fn indoor() -> Shadowing {
        Shadowing { sigma_db: 1.5 }
    }

    /// Draws one shadowing realization in dB.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gaussian(rng, self.sigma_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::FEET_TO_METERS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dips_land_near_six_and_thirty_feet() {
        let model = TwoRay::lecture_hall();
        let dips_ft: Vec<f64> = model
            .dip_distances_m(12.0)
            .into_iter()
            .map(|d| d / FEET_TO_METERS)
            .collect();
        assert!(
            dips_ft.iter().any(|&d| (5.0..7.0).contains(&d)),
            "no dip near 6 ft: {dips_ft:?}"
        );
        assert!(
            dips_ft.iter().any(|&d| (28.0..33.0).contains(&d)),
            "no dip near 30 ft: {dips_ft:?}"
        );
    }

    #[test]
    fn gain_at_dip_is_depressed() {
        // Close-in dips are shallow (the reflected ray is relatively weak
        // there), so only check dips beyond 1 m.
        let model = TwoRay::lecture_hall();
        for dip in model.dip_distances_m(12.0).into_iter().filter(|&d| d > 1.0) {
            let at_dip = model.gain_db(dip);
            let off_dip = model.gain_db(dip * 1.12 + 0.15);
            assert!(at_dip < off_dip, "dip at {dip} m: {at_dip} !< {off_dip}");
            assert!(at_dip < -2.0, "dip at {dip} too shallow: {at_dip}");
        }
    }

    #[test]
    fn gain_is_bounded() {
        let model = TwoRay::lecture_hall();
        let mut d = 0.1;
        while d < 25.0 {
            let g = model.gain_db(d);
            assert!((-12.0..=3.0).contains(&g), "gain {g} at {d} m");
            d += 0.05;
        }
    }

    #[test]
    fn far_field_gain_approaches_destructive_limit() {
        // As d → ∞ the path difference → 0 and the inverted reflection
        // partially cancels the direct ray.
        let model = TwoRay::lecture_hall();
        let g = model.gain_db(500.0);
        let expected = crate::math::linear_to_db((1.0 + model.reflection_coeff).powi(2));
        assert!((g - expected).abs() < 0.5, "{g} vs {expected}");
    }

    #[test]
    fn shadowing_is_zero_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = Shadowing::indoor();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| s.sample(&mut rng)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.05, "{mean}");
    }

    #[test]
    fn shadowing_respects_sigma() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = Shadowing { sigma_db: 3.0 };
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| s.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var.sqrt() - 3.0).abs() < 0.05, "{}", var.sqrt());
    }
}
