//! The automatic gain control (AGC) model: how received power becomes the
//! *signal level* and *silence level* the WaveLAN modem reports, and how a
//! too-slow AGC loses packet preambles.
//!
//! Paper Section 2: "The signal and silence levels (5 bits) are derived from
//! the receiver's automatic gain control (AGC) setting just after the
//! beginning and end of the packet, respectively." (The paper's own tables
//! show values up to 41, so the field is wider in practice; we allow 0–63.)
//!
//! Two calibration constants anchor the whole reproduction to the paper's
//! unit system and are used throughout the workspace:
//!
//! * [`DB_PER_LEVEL_UNIT`] — 1.5 dB per AGC unit. This is pinned by Table 4:
//!   a plaster/wire-mesh wall costs ≈5 units and a concrete wall ≈2 units,
//!   which at 1.5 dB/unit are 7.5 dB and 3 dB — right in the measured range
//!   for those materials at 900 MHz.
//! * [`LEVEL_FLOOR_DBM`] — the power that reads as level 0. With −93 dBm the
//!   quiet-room silence level comes out ≈3 (matching Tables 3–9) and the
//!   in-room signal level ≈30 at 7 ft (matching Table 2's conditions).
//!
//! Section 5.1 conjectures that residual in-room packet loss "could indicate
//! that the modem unit's AGC occasionally reacts too slowly and causes the
//! beginning of a packet to be missed"; [`AgcModel::miss_probability`] models
//! exactly that acquisition failure as a logistic function of the raw
//! (pre-despreading) SINR at the preamble.

use crate::baseband::gaussian;
use crate::math::{db_to_linear, dbm_sum};
use rand::Rng;

/// Decibels per AGC level unit (see module docs for calibration).
pub const DB_PER_LEVEL_UNIT: f64 = 1.5;

/// Received power that maps to level 0.
pub const LEVEL_FLOOR_DBM: f64 = -93.0;

/// Largest reportable level (6-bit field).
pub const MAX_LEVEL: u8 = 63;

/// Default thermal noise floor seen by the AGC. −88.5 dBm reads as silence
/// level 3.0, matching the paper's quiet-environment silence of 2–4.
pub const THERMAL_NOISE_DBM: f64 = -88.5;

/// A reported AGC level (signal or silence), 0–63.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalLevel(pub u8);

impl SignalLevel {
    /// The raw reported value.
    pub fn value(self) -> u8 {
        self.0
    }
}

impl core::fmt::Display for SignalLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Converts a power in dBm to (unquantized) AGC level units.
pub fn power_to_level_units(dbm: f64) -> f64 {
    (dbm - LEVEL_FLOOR_DBM) / DB_PER_LEVEL_UNIT
}

/// Converts AGC level units back to dBm.
pub fn level_units_to_dbm(units: f64) -> f64 {
    LEVEL_FLOOR_DBM + units * DB_PER_LEVEL_UNIT
}

/// The AGC model: reporting jitter plus the two preamble-acquisition failure
/// mechanisms.
///
/// A packet start can be missed two ways, and the study's data needs both:
///
/// 1. **AGC slowness** at low *absolute* power — Section 5.1's conjecture
///    that "the modem unit's AGC occasionally reacts too slowly and causes
///    the beginning of a packet to be missed". A function of the faded
///    signal power (in level units), independent of interference. This is
///    what loses packets in the attenuation experiments (body, multi-room).
/// 2. **Correlation failure** against co-channel interference — the preamble
///    correlator integrates long enough to acquire at slightly *negative*
///    despread SINR, but a strong in-band burst (the SS phone inches away)
///    swamps it. A function of the despread-domain SINR. This is what loses
///    half the packets in Table 11's "near" trials.
#[derive(Debug, Clone, Copy)]
pub struct AgcModel {
    /// Standard deviation of the level-report jitter, in level units.
    /// Calibrated to the σ ≈ 0.6 the paper's stable trials show (Table 4).
    pub jitter_sigma_units: f64,
    /// Signal level (units) at which AGC slowness misses half the preambles.
    pub agc_miss_center_units: f64,
    /// Logistic width of the AGC-slowness curve, level units.
    pub agc_miss_width_units: f64,
    /// Despread SINR (dB) at which correlation acquisition misses half.
    pub corr_miss_center_db: f64,
    /// Logistic width of the correlation curve, dB.
    pub corr_miss_width_db: f64,
}

impl Default for AgcModel {
    fn default() -> Self {
        AgcModel {
            jitter_sigma_units: 0.55,
            // Calibrated so loss ≈2.5% at the human-body operating point
            // (level ≈6.7, Tables 8–9) and ≈0.1% at multi-room Tx5
            // (level ≈9.5, Table 5).
            agc_miss_center_units: 3.85,
            agc_miss_width_units: 0.78,
            // Acquisition survives to ≈−2 dB despread SINR; an SS-phone
            // burst at −7 dB kills it (Table 11's ≈52% loss at 52% lethal
            // duty).
            corr_miss_center_db: -3.0,
            corr_miss_width_db: 1.0,
        }
    }
}

impl AgcModel {
    /// Reports the AGC level for a total received power, with measurement
    /// jitter, quantized and clamped to the 6-bit field.
    pub fn report_level<R: Rng + ?Sized>(&self, total_power_dbm: f64, rng: &mut R) -> SignalLevel {
        let units = power_to_level_units(total_power_dbm) + gaussian(rng, self.jitter_sigma_units);
        SignalLevel(units.round().clamp(0.0, f64::from(MAX_LEVEL)) as u8)
    }

    /// AGC-slowness miss probability at the given *faded* signal power.
    pub fn agc_miss_probability(&self, faded_signal_dbm: f64) -> f64 {
        let units = power_to_level_units(faded_signal_dbm);
        1.0 / (1.0 + ((units - self.agc_miss_center_units) / self.agc_miss_width_units).exp())
    }

    /// Correlation-acquisition miss probability at the given despread SINR.
    pub fn corr_miss_probability(&self, despread_sinr_db: f64) -> f64 {
        1.0 / (1.0
            + ((despread_sinr_db - self.corr_miss_center_db) / self.corr_miss_width_db).exp())
    }

    /// Combined miss probability (either mechanism fires independently).
    pub fn miss_probability(&self, faded_signal_dbm: f64, despread_sinr_db: f64) -> f64 {
        let p1 = self.agc_miss_probability(faded_signal_dbm);
        let p2 = self.corr_miss_probability(despread_sinr_db);
        1.0 - (1.0 - p1) * (1.0 - p2)
    }

    /// Total AGC-visible power: the linear sum of all co-channel components.
    pub fn total_power_dbm<I: IntoIterator<Item = f64>>(powers_dbm: I) -> f64 {
        dbm_sum(powers_dbm)
    }
}

/// Raw SINR in dB of a signal against a set of co-channel powers.
pub fn sinr_db(signal_dbm: f64, noise_and_interference_dbm: &[f64]) -> f64 {
    let denom_mw: f64 = noise_and_interference_dbm
        .iter()
        .map(|&p| db_to_linear(p))
        .sum();
    signal_dbm - crate::math::mw_to_dbm(denom_mw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibration_anchors() {
        // Thermal floor reads as silence ≈ 3.
        assert!((power_to_level_units(THERMAL_NOISE_DBM) - 3.0).abs() < 0.01);
        // Level 30 corresponds to −48 dBm.
        assert!((level_units_to_dbm(30.0) - (-48.0)).abs() < 1e-9);
    }

    #[test]
    fn unit_round_trip() {
        for dbm in [-93.0, -70.0, -48.0, -30.0] {
            assert!((level_units_to_dbm(power_to_level_units(dbm)) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn report_level_tracks_power() {
        let mut rng = StdRng::seed_from_u64(1);
        let agc = AgcModel::default();
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| f64::from(agc.report_level(-48.0, &mut rng).value()))
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 30.0).abs() < 0.1, "{mean}");
    }

    #[test]
    fn report_level_clamps() {
        let mut rng = StdRng::seed_from_u64(2);
        let agc = AgcModel::default();
        assert_eq!(agc.report_level(-200.0, &mut rng).value(), 0);
        assert_eq!(agc.report_level(20.0, &mut rng).value(), MAX_LEVEL);
    }

    #[test]
    fn agc_miss_calibration() {
        let agc = AgcModel::default();
        // Body operating point: with the mean diversity fade (+1.5 dB) the
        // effective level is ≈7 units → a percent or two of loss.
        let p_body = agc.agc_miss_probability(level_units_to_dbm(7.0));
        assert!((0.005..0.05).contains(&p_body), "{p_body}");
        // Tx5 point (level ≈9.5 + fade): well under 0.5%.
        assert!(agc.agc_miss_probability(level_units_to_dbm(11.0)) < 0.005);
        // Deep attenuation: mostly missed.
        assert!(agc.agc_miss_probability(level_units_to_dbm(2.0)) > 0.9);
    }

    #[test]
    fn corr_miss_calibration() {
        let agc = AgcModel::default();
        // Comfortable SINR: essentially never.
        assert!(agc.corr_miss_probability(6.0) < 2e-4);
        // Mild negative SINR: acquisition still mostly works (long preamble
        // correlation).
        assert!(agc.corr_miss_probability(-1.0) < 0.2);
        // A jam-strength burst: essentially always missed.
        assert!(agc.corr_miss_probability(-7.0) > 0.95);
    }

    #[test]
    fn combined_miss_composes() {
        let agc = AgcModel::default();
        let strong = level_units_to_dbm(30.0);
        // Strong signal, clean channel: only the floor terms.
        assert!(agc.miss_probability(strong, 30.0) < 1e-6);
        // Either mechanism alone dominates the combination.
        let p = agc.miss_probability(level_units_to_dbm(4.0), 30.0);
        assert!((p - agc.agc_miss_probability(level_units_to_dbm(4.0))).abs() < 1e-6);
        let q = agc.miss_probability(strong, -7.0);
        assert!((q - agc.corr_miss_probability(-7.0)).abs() < 1e-6);
    }

    #[test]
    fn sinr_with_interference() {
        // Equal interferer halves the SINR budget relative to noise alone.
        let quiet = sinr_db(-50.0, &[THERMAL_NOISE_DBM]);
        let jammed = sinr_db(-50.0, &[THERMAL_NOISE_DBM, -60.0]);
        assert!(quiet > jammed);
        assert!((quiet - 38.5).abs() < 0.01);
        // Interferer dominates noise: SINR ≈ signal − interferer.
        assert!((jammed - 10.0).abs() < 0.1);
    }

    #[test]
    fn total_power_sums_linearly() {
        let total = AgcModel::total_power_dbm([-50.0, -50.0, -50.0]);
        assert!((total - (-50.0 + 4.771)).abs() < 0.01);
    }
}
