//! The per-packet reception pipeline.
//!
//! Given the slow-scale received signal power (path loss, walls, shadowing,
//! multipath ripple — computed by the caller from geometry) and the
//! interference emissions overlapping the packet, [`LinkModel::receive`]
//! reproduces everything the paper's receiver could observe about one packet:
//!
//! 1. **loss** — host overrun (Section 5.1's background loss) or the AGC
//!    missing the start-of-frame marker at low raw SINR (Section 4);
//! 2. **truncation** — the modem losing lock mid-packet, either because an
//!    interference burst drives the raw SINR below the tracking threshold
//!    (the 100%-truncation signature of Table 11) or because of a deep fade
//!    (the occasional truncations of Tables 5 and 8);
//! 3. **bit errors** — drawn per interference segment from the closed-form
//!    DQPSK error rate at the despread-domain SINR;
//! 4. **reported metrics** — signal level (AGC at packet start), silence
//!    level (AGC at packet end, signal excluded), signal quality (correlator
//!    confidence over the early packet), and the selected antenna.
//!
//! All randomness comes from the caller's RNG, so trials are reproducible.

use crate::agc::{AgcModel, SignalLevel, THERMAL_NOISE_DBM};
use crate::antenna::DiversityReceiver;
use crate::interference::Emission;
use crate::math::{db_to_linear, mw_to_dbm};
use crate::modulation::dqpsk_ber;
use crate::quality::QualityModel;
use crate::scratch::{ChannelCache, RxScratch};
use rand::Rng;

/// Bandwidth-to-bit-rate gain: the 11 MHz chip bandwidth versus the 2 Mb/s
/// data rate gives `10·log10(11/2) ≈ 7.4 dB` between SNR and Eb/N0.
pub const BANDWIDTH_GAIN_DB: f64 = 7.403;

/// How far into the packet the quality sample looks, in bit-times (≈1 ms).
/// "The signal quality ... is sampled just after the beginning of the packet"
/// (paper Section 2) — an interference burst within this window drags the
/// report down; a later burst does not. This is why the paper's jam-truncated
/// packets still show mid-range quality (Table 12): they *acquired* in a
/// burst gap, and the killing burst often arrived after the sample.
pub const QUALITY_WINDOW_BITS: u64 = 2_000;

/// Why a packet was lost entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// "a packet \[arrived\] correctly but \[was\] lost by the receiver due to
    /// unrelated system activity" (Section 4) — the host-resource loss floor.
    HostOverrun,
    /// The modem missed the beginning-of-frame marker (AGC/acquisition).
    PreambleMiss,
}

/// The radio metrics the modem reports to the host for each packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxMetrics {
    /// AGC signal level, sampled just after the start of the packet.
    pub level: SignalLevel,
    /// AGC silence level, sampled just after the end of the packet.
    pub silence: SignalLevel,
    /// 4-bit signal quality from the diversity correlator.
    pub quality: u8,
    /// Selected antenna (0 or 1).
    pub antenna: u8,
}

/// A successfully acquired packet (possibly truncated and/or corrupted).
#[derive(Debug, Clone, PartialEq)]
pub struct Reception {
    /// If the modem lost lock mid-packet: the bit index where delivery stops.
    pub truncated_at_bit: Option<u64>,
    /// Positions of corrupted bits among the *delivered* bits, ascending.
    pub error_bits: Vec<u64>,
    /// Reported radio metrics.
    pub metrics: RxMetrics,
}

impl Reception {
    /// Number of bits actually delivered to the host.
    pub fn delivered_bits(&self, len_bits: u64) -> u64 {
        self.truncated_at_bit.unwrap_or(len_bits).min(len_bits)
    }
}

/// Outcome of one packet transmission attempt at the receiver.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketOutcome {
    /// Nothing reached the host.
    Lost(LossCause),
    /// The host logged a packet (clean, corrupted, or truncated).
    Received(Reception),
}

impl PacketOutcome {
    /// Convenience: true when the packet arrived with no damage at all.
    pub fn is_clean(&self, len_bits: u64) -> bool {
        match self {
            PacketOutcome::Lost(_) => false,
            PacketOutcome::Received(r) => {
                r.truncated_at_bit.is_none() && r.error_bits.is_empty() && len_bits > 0
            }
        }
    }
}

/// The tunable reception model. Defaults are the workspace calibration
/// (see `wavelan-core::calibration` for the paper anchors of each constant).
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// AGC (level reporting and preamble acquisition).
    pub agc: AgcModel,
    /// Signal-quality reporting.
    pub quality: QualityModel,
    /// Dual-antenna selection diversity.
    pub diversity: DiversityReceiver,
    /// Thermal noise floor at the receiver, dBm.
    pub thermal_dbm: f64,
    /// Probability that the host drops a correctly received packet
    /// (Section 5.1 floor: a few × 10⁻⁴).
    pub host_loss_probability: f64,
    /// Despread-domain SINR below which chip tracking unlocks mid-packet
    /// (truncation). Tracking rides out mild negative SINR; a jam-strength
    /// burst breaks it.
    pub unlock_despread_sinr_db: f64,
    /// Deep-fade truncation: coefficient of `c·exp(−(SINR−ref)/scale)`.
    pub dip_trunc_coeff: f64,
    /// Deep-fade truncation: reference SINR (dB).
    pub dip_trunc_ref_db: f64,
    /// Deep-fade truncation: exponential scale (dB).
    pub dip_trunc_scale_db: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            agc: AgcModel::default(),
            quality: QualityModel::default(),
            diversity: DiversityReceiver::default(),
            thermal_dbm: THERMAL_NOISE_DBM,
            host_loss_probability: 2.5e-4,
            unlock_despread_sinr_db: -4.0,
            dip_trunc_coeff: 0.02,
            dip_trunc_ref_db: 2.0,
            dip_trunc_scale_db: 2.0,
        }
    }
}

/// One homogeneous stretch of the packet: constant interference power.
///
/// Public so the timeline builder can be benchmarked in isolation
/// (`benches/receive_hotpath.rs`) and reused by [`RxScratch`]'s timeline
/// cache; not part of the modelling API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First bit index covered.
    pub start_bit: u64,
    /// One past the last bit index covered.
    pub end_bit: u64,
    /// Total AGC-visible interference power, mW.
    pub agc_mw: f64,
    /// Total despread-effective interference power, mW.
    pub despread_mw: f64,
}

/// Splits `[0, len)` at every emission boundary and accumulates per-segment
/// interference power in both domains.
pub fn segment_timeline(emissions: &[Emission], len_bits: u64) -> Vec<Segment> {
    let mut cuts = Vec::new();
    let mut segments = Vec::new();
    segment_timeline_into(emissions, len_bits, &mut cuts, &mut segments, db_to_linear);
    segments
}

/// The allocation-free core of [`segment_timeline`]: builds into caller
/// buffers (cleared first) and converts powers through `db_to_lin`, which
/// is either the direct [`db_to_linear`] or [`ChannelCache::db_to_linear`]
/// — both return the identical `f64`, so the two paths are bit-equal.
pub(crate) fn segment_timeline_into(
    emissions: &[Emission],
    len_bits: u64,
    cuts: &mut Vec<u64>,
    segments: &mut Vec<Segment>,
    mut db_to_lin: impl FnMut(f64) -> f64,
) {
    cuts.clear();
    cuts.push(0);
    cuts.push(len_bits);
    for e in emissions {
        if e.start_bit < len_bits {
            cuts.push(e.start_bit);
        }
        if e.end_bit < len_bits {
            cuts.push(e.end_bit);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    segments.clear();
    for w in cuts.windows(2) {
        let (s, e) = (w[0], w[1]);
        if s == e {
            continue;
        }
        let mut agc_mw = 0.0;
        let mut despread_mw = 0.0;
        for em in emissions {
            if em.start_bit < e && em.end_bit > s {
                agc_mw += db_to_lin(em.agc_dbm());
                despread_mw += db_to_lin(em.despread_dbm());
            }
        }
        segments.push(Segment {
            start_bit: s,
            end_bit: e,
            agc_mw,
            despread_mw,
        });
    }
}

/// The math provider for the reception pipeline: direct computation
/// ([`DirectMath`], the reference path) or the exact-value memo
/// ([`ChannelCache`], the hot path). Both implementations return identical
/// `f64` bits for identical inputs, which is what keeps the two `receive`
/// variants on the same RNG stream.
pub(crate) trait RxMath {
    /// [`db_to_linear`], possibly memoized.
    fn db_to_linear(&mut self, db: f64) -> f64;
    /// [`mw_to_dbm`], possibly memoized.
    fn mw_to_dbm(&mut self, mw: f64) -> f64;
    /// `dqpsk_ber(db_to_linear(ebn0_db))`, possibly memoized.
    fn dqpsk_ber_from_db(&mut self, ebn0_db: f64) -> f64;
    /// `e^(−x)`, possibly memoized.
    fn exp_neg(&mut self, x: f64) -> f64;
}

/// The uncached math provider: every call computes directly.
pub(crate) struct DirectMath;

impl RxMath for DirectMath {
    #[inline]
    fn db_to_linear(&mut self, db: f64) -> f64 {
        db_to_linear(db)
    }
    #[inline]
    fn mw_to_dbm(&mut self, mw: f64) -> f64 {
        mw_to_dbm(mw)
    }
    #[inline]
    fn dqpsk_ber_from_db(&mut self, ebn0_db: f64) -> f64 {
        dqpsk_ber(db_to_linear(ebn0_db))
    }
    #[inline]
    fn exp_neg(&mut self, x: f64) -> f64 {
        (-x).exp()
    }
}

impl RxMath for ChannelCache {
    #[inline]
    fn db_to_linear(&mut self, db: f64) -> f64 {
        ChannelCache::db_to_linear(self, db)
    }
    #[inline]
    fn mw_to_dbm(&mut self, mw: f64) -> f64 {
        ChannelCache::mw_to_dbm(self, mw)
    }
    #[inline]
    fn dqpsk_ber_from_db(&mut self, ebn0_db: f64) -> f64 {
        ChannelCache::dqpsk_ber_from_db(self, ebn0_db)
    }
    #[inline]
    fn exp_neg(&mut self, x: f64) -> f64 {
        ChannelCache::exp_neg(self, x)
    }
}

/// Samples `Binomial(n, p)` cheaply: exact Knuth-style Poisson inversion for
/// small means, Gaussian approximation for large ones. The experiments only
/// ever consume aggregate error counts, so tail-exactness beyond a few σ is
/// irrelevant.
pub fn sample_bit_errors<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    sample_bit_errors_with(n, p, rng, &mut DirectMath)
}

/// [`sample_bit_errors`] with the Poisson threshold `e^(−mean)` routed
/// through the math provider (memoizable: periodic interference schedules
/// repeat segment lengths, hence means). Draws the same RNG sequence as the
/// direct form for the same inputs.
fn sample_bit_errors_with<R: Rng + ?Sized, M: RxMath>(
    n: u64,
    p: f64,
    rng: &mut R,
    math: &mut M,
) -> u64 {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if mean < 30.0 {
        // Poisson approximation to the binomial (p is tiny whenever we are
        // in this branch in practice; clamp to n regardless).
        let l = math.exp_neg(mean);
        let mut k = 0u64;
        let mut prod = 1.0;
        loop {
            prod *= rng.gen::<f64>();
            if prod <= l || k >= n {
                return k.min(n);
            }
            k += 1;
        }
    } else {
        let sigma = (mean * (1.0 - p)).sqrt();
        let draw = mean + crate::baseband::gaussian(rng, sigma);
        (draw.round().max(0.0) as u64).min(n)
    }
}

/// Appends exactly `count` *distinct* bit positions drawn uniformly from
/// `[start, end)` to `out`, retrying on collision so the appended count
/// always equals the sampled error count (`count` must not exceed the range
/// size, which [`sample_bit_errors`] guarantees by clamping to the segment
/// length).
///
/// This replaces the old draw-then-`dedup` scheme, which silently dropped
/// colliding draws and so *undercounted* the bit errors that
/// [`sample_bit_errors`] had decided on. Retrying consumes extra RNG draws
/// only when a collision actually occurs, so RNG streams shift only for the
/// (rare) packets that previously undercounted.
pub fn sample_distinct_positions<R: Rng + ?Sized>(
    count: u64,
    start: u64,
    end: u64,
    rng: &mut R,
    out: &mut Vec<u64>,
) {
    debug_assert!(
        count <= end - start,
        "cannot draw {count} distinct from [{start}, {end})"
    );
    for _ in 0..count {
        let pos = loop {
            let p = rng.gen_range(start..end);
            // Positions from other segments lie outside [start, end), so
            // scanning the whole list only ever rejects genuine collisions.
            if !out.contains(&p) {
                break p;
            }
        };
        out.push(pos);
    }
}

impl LinkModel {
    /// Processes one packet arrival. `signal_dbm` is the slow-scale received
    /// power of the desired transmitter (path loss, obstacles, shadowing and
    /// multipath ripple already applied); `emissions` is the interference
    /// overlapping this packet (see [`crate::interference`]); `len_bits` is
    /// the full frame length in bits (modem + Ethernet + body + FCS).
    pub fn receive<R: Rng + ?Sized>(
        &self,
        signal_dbm: f64,
        emissions: &[Emission],
        len_bits: u64,
        rng: &mut R,
    ) -> PacketOutcome {
        let segments = segment_timeline(emissions, len_bits);
        let (outcome, _) = self.receive_inner(
            signal_dbm,
            len_bits,
            rng,
            &mut DirectMath,
            &segments,
            Vec::new(),
        );
        outcome
    }

    /// [`LinkModel::receive`] through a reusable workspace: the allocation-
    /// free, memoized hot path. Draws the identical RNG sequence and
    /// produces the identical outcome as `receive` (the caches memoize
    /// *exact* values; see [`crate::scratch`]), so callers may switch
    /// freely — `receive` is kept as the uncached reference and baseline.
    ///
    /// In steady state (warm scratch, recycled error buffers) this performs
    /// zero heap allocations per packet; see `tests/zero_alloc.rs`.
    pub fn receive_with<R: Rng + ?Sized>(
        &self,
        signal_dbm: f64,
        emissions: &[Emission],
        len_bits: u64,
        rng: &mut R,
        scratch: &mut RxScratch,
    ) -> PacketOutcome {
        scratch.segments_for(emissions, len_bits);
        let error_buf = scratch.take_error_buf();
        let (cache, segments) = scratch.cache_and_segments();
        let (outcome, leftover) =
            self.receive_inner(signal_dbm, len_bits, rng, cache, segments, error_buf);
        if let Some(buf) = leftover {
            scratch.recycle_error_buf(buf);
        }
        outcome
    }

    /// The shared pipeline. Returns the outcome plus, for lost packets, the
    /// unused error buffer so the caller can recycle it.
    fn receive_inner<R: Rng + ?Sized, M: RxMath>(
        &self,
        signal_dbm: f64,
        len_bits: u64,
        rng: &mut R,
        math: &mut M,
        segments: &[Segment],
        mut error_bits: Vec<u64>,
    ) -> (PacketOutcome, Option<Vec<u64>>) {
        let thermal_mw = math.db_to_linear(self.thermal_dbm);

        // Per-packet diversity fade: affects decoding but not the reported
        // level (the AGC averages the preamble; slow power is what it sees).
        let (antenna, fade_db) = self.diversity.select(rng);
        let faded_signal_dbm = signal_dbm + fade_db;

        // --- Reported signal level: AGC at packet start (signal + all
        // AGC-visible interference + thermal).
        let start_agc_mw = segments.first().map_or(0.0, |s| s.agc_mw);
        let signal_mw = math.db_to_linear(signal_dbm);
        let level_power_dbm = math.mw_to_dbm(signal_mw + start_agc_mw + thermal_mw);
        let level = self.agc.report_level(level_power_dbm, rng);

        // --- Reported silence level: AGC just after packet end; the desired
        // signal has stopped, interference state sampled at the last bit.
        let end_agc_mw = segments.last().map_or(0.0, |s| s.agc_mw);
        let silence_power_dbm = math.mw_to_dbm(end_agc_mw + thermal_mw);
        let silence = self.agc.report_level(silence_power_dbm, rng);

        // --- Host loss floor (checked first: independent of radio state).
        if rng.gen::<f64>() < self.host_loss_probability {
            return (
                PacketOutcome::Lost(LossCause::HostOverrun),
                Some(error_bits),
            );
        }

        // --- Preamble acquisition: AGC slowness (absolute faded power) plus
        // correlation failure (despread-domain SINR at the packet start).
        let start_despread_mw = segments.first().map_or(0.0, |s| s.despread_mw);
        let preamble_despread_sinr_db =
            faded_signal_dbm - math.mw_to_dbm(thermal_mw + start_despread_mw);
        let p_miss = self
            .agc
            .miss_probability(faded_signal_dbm, preamble_despread_sinr_db);
        if rng.gen::<f64>() < p_miss {
            return (
                PacketOutcome::Lost(LossCause::PreambleMiss),
                Some(error_bits),
            );
        }

        // --- Walk the segments: look for unlock (truncation) and draw bit
        // errors from the despread-domain SINR.
        let mut truncated_at: Option<u64> = None;
        let mut min_early_despread_sinr = f64::INFINITY;
        for seg in segments {
            let despread_sinr = faded_signal_dbm - math.mw_to_dbm(thermal_mw + seg.despread_mw);
            // Quality window: the sampled-early-in-the-packet region.
            if seg.start_bit < QUALITY_WINDOW_BITS.min(len_bits / 2) {
                min_early_despread_sinr = min_early_despread_sinr.min(despread_sinr);
            }
            if despread_sinr < self.unlock_despread_sinr_db {
                // Chip tracking collapses shortly into this segment.
                let ride = rng.gen_range(0..200u64.min(seg.end_bit - seg.start_bit).max(1));
                truncated_at = Some(seg.start_bit + ride);
                break;
            }
            let ebn0_db = despread_sinr + BANDWIDTH_GAIN_DB;
            let ber = math.dqpsk_ber_from_db(ebn0_db);
            let bits = seg.end_bit - seg.start_bit;
            let n_err = sample_bit_errors_with(bits, ber, rng, math);
            sample_distinct_positions(n_err, seg.start_bit, seg.end_bit, rng, &mut error_bits);
        }

        // --- Deep-fade truncation (attenuation regime): a rare mid-packet
        // fade below the tracking threshold, probability falling
        // exponentially with the clean-channel SINR.
        if truncated_at.is_none() {
            let clean_sinr = faded_signal_dbm - self.thermal_dbm;
            let p = (self.dip_trunc_coeff
                * (-(clean_sinr - self.dip_trunc_ref_db) / self.dip_trunc_scale_db).exp())
            .min(1.0);
            if rng.gen::<f64>() < p {
                truncated_at = Some(rng.gen_range(0..len_bits.max(1)));
            }
        }

        // Drop errors beyond the truncation point and sort; positions are
        // distinct by construction (see `sample_distinct_positions`).
        if let Some(t) = truncated_at {
            error_bits.retain(|&b| b < t);
        }
        error_bits.sort_unstable();

        if min_early_despread_sinr.is_infinite() {
            // Zero-length packet edge case: treat as perfectly clean channel.
            min_early_despread_sinr = faded_signal_dbm - self.thermal_dbm;
        }
        let quality = self.quality.report(min_early_despread_sinr, rng);

        (
            PacketOutcome::Received(Reception {
                truncated_at_bit: truncated_at,
                error_bits,
                metrics: RxMetrics {
                    level,
                    silence,
                    quality,
                    antenna: antenna.id(),
                },
            }),
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{DutyCycle, InterferenceKind, Interferer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const LEN: u64 = 8560; // 1070-byte frame

    fn run_many(
        model: &LinkModel,
        signal_dbm: f64,
        interferers: &[Interferer],
        n: usize,
        seed: u64,
    ) -> (usize, usize, usize, u64) {
        // returns (lost, truncated, damaged, total_error_bits)
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut lost, mut trunc, mut damaged, mut bits) = (0, 0, 0, 0u64);
        for _ in 0..n {
            let mut emissions = Vec::new();
            for i in interferers {
                emissions.extend(i.emissions(LEN, &mut rng));
            }
            match model.receive(signal_dbm, &emissions, LEN, &mut rng) {
                PacketOutcome::Lost(_) => lost += 1,
                PacketOutcome::Received(r) => {
                    if r.truncated_at_bit.is_some() {
                        trunc += 1;
                    }
                    if !r.error_bits.is_empty() {
                        damaged += 1;
                        bits += r.error_bits.len() as u64;
                    }
                }
            }
        }
        (lost, trunc, damaged, bits)
    }

    #[test]
    fn strong_signal_is_essentially_error_free() {
        // In-room conditions: level ≈ 30 → −48 dBm, quiet channel.
        let model = LinkModel::default();
        let (lost, trunc, damaged, bits) = run_many(&model, -48.0, &[], 20_000, 1);
        // Loss only at the host floor (~0.025%).
        assert!(lost <= 20, "lost {lost}");
        assert_eq!(trunc, 0);
        assert_eq!(damaged, 0);
        assert_eq!(bits, 0);
    }

    #[test]
    fn weak_signal_produces_the_error_region() {
        // Figure 2: below level 8 (−81 dBm) the error rate becomes very high.
        let model = LinkModel::default();
        let (lost_hi, _, dmg_hi, _) = run_many(&model, -81.0, &[], 4_000, 2);
        let (lost_lo, _, dmg_lo, _) = run_many(&model, -87.0, &[], 4_000, 3);
        // At level ~8 some loss/damage; at level ~4 heavy loss.
        assert!(lost_lo > lost_hi, "{lost_lo} vs {lost_hi}");
        assert!(lost_lo > 1_000, "deep-attenuation loss too low: {lost_lo}");
        assert!(dmg_hi + dmg_lo > 0);
        let _ = (dmg_hi, dmg_lo);
    }

    #[test]
    fn body_operating_point_shape() {
        // Tables 8–9: level ≈ 6.7 (−83 dBm): a few % loss, ~15% of packets
        // body-damaged with a handful of bits each, occasional truncation.
        let model = LinkModel::default();
        let n = 20_000;
        let (lost, trunc, damaged, bits) = run_many(&model, -83.0, &[], n, 4);
        let loss_rate = lost as f64 / n as f64;
        let dmg_rate = damaged as f64 / n as f64;
        assert!((0.005..0.10).contains(&loss_rate), "loss {loss_rate}");
        assert!((0.04..0.35).contains(&dmg_rate), "damaged {dmg_rate}");
        assert!(trunc > 0, "expected occasional truncation");
        assert!(trunc < n / 50, "too much truncation: {trunc}");
        let bits_per_damaged = bits as f64 / damaged.max(1) as f64;
        assert!(
            (1.0..40.0).contains(&bits_per_damaged),
            "{bits_per_damaged}"
        );
    }

    #[test]
    fn narrowband_interference_is_harmless_but_raises_silence() {
        // Table 10: strong FM phone → silence way up, zero damage.
        let model = LinkModel::default();
        let phone = Interferer::continuous(InterferenceKind::NarrowbandInBand, -64.0);
        let n = 5_000;
        let (lost, trunc, damaged, _) = run_many(&model, -53.0, &[phone], n, 5);
        assert!(lost < 10, "lost {lost}");
        assert_eq!(trunc, 0);
        assert_eq!(damaged, 0);
        // Check reported silence is elevated.
        let mut rng = StdRng::seed_from_u64(6);
        let em = phone.emissions(LEN, &mut rng);
        if let PacketOutcome::Received(r) = model.receive(-53.0, &em, LEN, &mut rng) {
            assert!(
                r.metrics.silence.value() >= 15,
                "silence {}",
                r.metrics.silence
            );
            assert!(r.metrics.quality >= 14, "quality {}", r.metrics.quality);
        } else {
            panic!("packet lost under narrowband interference");
        }
    }

    #[test]
    fn nearby_ss_phone_jams() {
        // Table 11 near cases: ~half the packets lost, all received truncated.
        let model = LinkModel::default();
        let phone = Interferer {
            kind: InterferenceKind::WidebandInBand,
            power_dbm: -34.0,
            duty: DutyCycle::Burst {
                period_bits: 8000,
                on_bits: 4200,
            },
            burst_sigma_db: 2.0,
        };
        let n = 3_000;
        let (lost, trunc, _damaged, _) = run_many(&model, -48.5, &[phone], n, 7);
        let received = n - lost;
        let loss_rate = lost as f64 / n as f64;
        assert!((0.3..0.7).contains(&loss_rate), "loss {loss_rate}");
        // Essentially all received packets truncated (paper: 100%; antenna
        // diversity lets a tiny fraction ride through in the model).
        assert!(
            trunc as f64 > 0.95 * received as f64,
            "trunc {trunc}/{received}"
        );
    }

    #[test]
    fn remote_ss_phone_is_harmless() {
        // Table 11 "RS remote cluster": distance saves the link.
        let model = LinkModel::default();
        let phone = Interferer {
            kind: InterferenceKind::WidebandInBand,
            power_dbm: -64.0,
            duty: DutyCycle::Burst {
                period_bits: 8000,
                on_bits: 7000,
            },
            burst_sigma_db: 1.0,
        };
        let n = 3_000;
        let (lost, trunc, damaged, _) = run_many(&model, -48.5, &[phone], n, 8);
        assert!(lost < 10, "lost {lost}");
        assert_eq!(trunc, 0);
        assert!(damaged <= 2, "damaged {damaged}");
    }

    #[test]
    fn out_of_band_source_is_invisible() {
        // Section 7.1: microwave oven / VHF transmitter below overload.
        let model = LinkModel::default();
        let oven = Interferer::continuous(InterferenceKind::OutOfBand, -15.0);
        let (lost, trunc, damaged, _) = run_many(&model, -48.0, &[oven], 5_000, 9);
        assert!(lost < 10);
        assert_eq!(trunc, 0);
        assert_eq!(damaged, 0);
    }

    #[test]
    fn competing_wavelan_raises_silence_not_errors() {
        // Table 14: jammers at levels ~14 and ~9.5 vs a level-28 signal.
        let model = LinkModel::default();
        let jammers = [
            Interferer::continuous(InterferenceKind::WaveLan, -72.3),
            Interferer::continuous(InterferenceKind::WaveLan, -78.8),
        ];
        let n = 5_000;
        let (lost, trunc, damaged, _) = run_many(&model, -50.0, &jammers, n, 10);
        assert!(lost < 10, "lost {lost}");
        assert_eq!(trunc, 0);
        assert_eq!(damaged, 0);
        // Silence elevated to ≈ 13–14 units.
        let mut rng = StdRng::seed_from_u64(11);
        let mut em = Vec::new();
        for j in &jammers {
            em.extend(j.emissions(LEN, &mut rng));
        }
        if let PacketOutcome::Received(r) = model.receive(-50.0, &em, LEN, &mut rng) {
            let s = r.metrics.silence.value();
            assert!((11..=17).contains(&s), "silence {s}");
        } else {
            panic!("lost");
        }
    }

    #[test]
    fn error_positions_are_sorted_unique_and_in_range() {
        let model = LinkModel::default();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..2_000 {
            if let PacketOutcome::Received(r) = model.receive(-84.5, &[], LEN, &mut rng) {
                let delivered = r.delivered_bits(LEN);
                for w in r.error_bits.windows(2) {
                    assert!(w[0] < w[1]);
                }
                if let Some(&last) = r.error_bits.last() {
                    assert!(last < delivered);
                }
            }
        }
    }

    #[test]
    fn binomial_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 8192u64;
        let p = 1e-3;
        let trials = 20_000;
        let total: u64 = (0..trials).map(|_| sample_bit_errors(n, p, &mut rng)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 8.192).abs() < 0.15, "{mean}");
        // Degenerate cases.
        assert_eq!(sample_bit_errors(0, 0.5, &mut rng), 0);
        assert_eq!(sample_bit_errors(100, 0.0, &mut rng), 0);
        assert_eq!(sample_bit_errors(100, 1.0, &mut rng), 100);
        // Large-mean branch.
        let big: u64 = sample_bit_errors(10_000, 0.5, &mut rng);
        assert!((4_000..6_000).contains(&big), "{big}");
    }

    #[test]
    fn distinct_sampler_draw_count_is_honest() {
        let mut rng = StdRng::seed_from_u64(14);
        for &(count, start, end) in &[
            (0u64, 10u64, 20u64),
            (1, 0, 1),
            (5, 100, 1_000),
            (64, 0, 64), // full range: every position drawn exactly once
            (50, 0, 64), // heavy collision pressure
        ] {
            let mut out = Vec::new();
            sample_distinct_positions(count, start, end, &mut rng, &mut out);
            assert_eq!(out.len() as u64, count, "[{start}, {end}) x{count}");
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len() as u64, count, "positions must be distinct");
            assert!(out.iter().all(|&p| (start..end).contains(&p)));
        }
        // Appending after another segment's positions must not reject against
        // them (they lie outside the new range) and must keep the count exact.
        let mut out = vec![3, 7];
        sample_distinct_positions(6, 10, 16, &mut rng, &mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..2], &[3, 7]);
        let mut tail = out[2..].to_vec();
        tail.sort_unstable();
        assert_eq!(tail, vec![10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn received_error_count_matches_sampled_count() {
        // In a stationary channel the whole packet is one segment, so for
        // untruncated receptions `error_bits.len()` must equal the count the
        // binomial sampler produced — duplicates are impossible, not merely
        // deduplicated away. Cross-check by replaying the sampler on a clone
        // of the RNG right before the segment walk would be brittle; instead
        // verify the strictly-increasing invariant plus a population check:
        // across many packets at a lossy operating point the per-packet error
        // counts must hit values that the old draw-then-dedup scheme would
        // have collapsed (i.e. no systematic undercount at high BER).
        let model = LinkModel::default();
        let mut rng = StdRng::seed_from_u64(15);
        let mut max_errs = 0usize;
        for _ in 0..2_000 {
            if let PacketOutcome::Received(r) = model.receive(-86.0, &[], LEN, &mut rng) {
                for w in r.error_bits.windows(2) {
                    assert!(w[0] < w[1], "positions must be strictly increasing");
                }
                max_errs = max_errs.max(r.error_bits.len());
            }
        }
        assert!(
            max_errs > 0,
            "operating point should produce errored packets"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let model = LinkModel::default();
        let render = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            format!(
                "{:?}",
                (0..200)
                    .map(|_| model.receive(-82.0, &[], LEN, &mut rng))
                    .collect::<Vec<_>>()
            )
        };
        assert_eq!(render(99), render(99));
        assert_ne!(render(99), render(100));
    }
}
