//! Reusable per-trial workspaces for the reception hot path: [`RxScratch`]
//! and [`ChannelCache`].
//!
//! Every table and figure in the paper is an aggregate over millions of
//! simulated receptions, so [`crate::link::LinkModel::receive`] is the
//! throughput-limiting inner loop of the whole reproduction. Two costs
//! dominate a naive implementation:
//!
//! 1. **heap churn** — the segment timeline and the error-bit list were
//!    rebuilt in fresh `Vec`s for every packet;
//! 2. **transcendental recomputation** — `10^(x/10)`, `log10`, and the
//!    `erfc`-based DQPSK error rate were recomputed per segment per packet,
//!    even though stationary scenarios (fixed geometry, repeating emission
//!    schedules — the common case in all sixteen experiments) present the
//!    same handful of inputs billions of times.
//!
//! [`RxScratch`] removes both: it owns the cut/segment buffers, a pool of
//! recycled error-bit vectors, a one-entry memo of the last segment
//! timeline, and a [`ChannelCache`] of *exact* memoized conversions. In
//! steady state, [`crate::link::LinkModel::receive_with`] performs **zero
//! heap allocations** (asserted by `tests/zero_alloc.rs`).
//!
//! # Bit-identical by construction
//!
//! The caches memoize exact `f64` values keyed by [`f64::to_bits`] of the
//! input — they are *never* lookup-table approximations. A cache hit returns
//! the identical bits the direct computation would have produced, so the
//! cached path draws the same RNG sequence and emits the same `f64` results
//! as the uncached reference path (`LinkModel::receive`). This is enforced
//! by the property test `cached_receive_is_bit_identical` in
//! `crates/phy/tests/props.rs` and, end to end, by the repo's golden
//! transcript and determinism suites.
//!
//! # Ownership rules
//!
//! * An [`RxScratch`] is **owned by one worker** (one thread) and reused
//!   across packets and trials; it is never shared. It carries no
//!   trial-observable state — only buffers and exact memos — so reusing one
//!   scratch across trials cannot change any result, and a fresh scratch
//!   per packet is merely slower, never different.
//! * Callers that consume a [`crate::link::Reception`] should return its
//!   `error_bits` vector via [`RxScratch::recycle_error_buf`] so the
//!   allocation is reused by a later packet (the simulator's runner does
//!   this; forgetting to recycle costs at most one allocation per damaged
//!   packet, never correctness).
//! * The memos are bounded (fixed-size, direct-mapped, overwrite on
//!   collision), so a scratch never grows without bound even under
//!   non-stationary workloads (e.g. per-burst lognormal power jitter, where
//!   keys rarely repeat).

use crate::interference::Emission;
use crate::link::{segment_timeline_into, Segment};
use crate::math::{db_to_linear, mw_to_dbm};
use crate::modulation::dqpsk_ber;

/// Slots per memo table. 2^11 entries × 16 bytes ≈ 32 KiB per table —
/// resident in L1/L2 for the handful of hot keys a stationary trial has.
const MEMO_SLOTS: usize = 1 << 11;

/// Sentinel key marking an empty slot. `u64::MAX` is the bit pattern of a
/// negative NaN; a NaN input can therefore never be cached (it is always
/// recomputed), which is correct — just never faster.
const EMPTY: u64 = u64::MAX;

/// A fixed-size, direct-mapped memo from `f64` input bits to an exact `f64`
/// output. Collisions simply overwrite: the table trades a rare recompute
/// for never growing and never probing more than one slot.
#[derive(Debug, Clone)]
struct Memo {
    slots: Box<[(u64, f64)]>,
}

impl Memo {
    fn new() -> Memo {
        Memo {
            slots: vec![(EMPTY, 0.0); MEMO_SLOTS].into_boxed_slice(),
        }
    }

    /// Fibonacci-hash the key into a slot index.
    #[inline]
    fn index(bits: u64) -> usize {
        (bits.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - 11)) as usize
    }

    /// Returns the memoized value for `key`, computing and storing it on a
    /// miss. `compute` must be a pure function of `key` for the memo to be
    /// exact — every call site here passes exactly that.
    #[inline]
    fn get_or_insert(&mut self, key: f64, compute: impl FnOnce(f64) -> f64) -> f64 {
        let bits = key.to_bits();
        let slot = &mut self.slots[Self::index(bits)];
        if slot.0 == bits {
            return slot.1;
        }
        let value = compute(key);
        *slot = (bits, value);
        value
    }
}

/// Exact-value memoization of the per-packet channel math: dB→linear and
/// mW→dBm conversions, the composed `dqpsk_ber(db_to_linear(·))` error
/// rate, and the `e^(−mean)` threshold of the Poisson error-count sampler.
///
/// See the module docs for the bit-identity and ownership rules. The cache
/// is embedded in [`RxScratch`]; it is also usable standalone by code that
/// performs the same conversions outside `receive` (nothing does today).
#[derive(Debug, Clone)]
pub struct ChannelCache {
    db_to_linear: Memo,
    mw_to_dbm: Memo,
    ber_from_ebn0_db: Memo,
    exp_neg: Memo,
}

impl Default for ChannelCache {
    fn default() -> Self {
        ChannelCache::new()
    }
}

impl ChannelCache {
    /// An empty cache.
    pub fn new() -> ChannelCache {
        ChannelCache {
            db_to_linear: Memo::new(),
            mw_to_dbm: Memo::new(),
            ber_from_ebn0_db: Memo::new(),
            exp_neg: Memo::new(),
        }
    }

    /// Memoized [`crate::math::db_to_linear`].
    #[inline]
    pub fn db_to_linear(&mut self, db: f64) -> f64 {
        self.db_to_linear.get_or_insert(db, db_to_linear)
    }

    /// Memoized [`crate::math::mw_to_dbm`].
    #[inline]
    pub fn mw_to_dbm(&mut self, mw: f64) -> f64 {
        self.mw_to_dbm.get_or_insert(mw, mw_to_dbm)
    }

    /// Memoized `dqpsk_ber(db_to_linear(ebn0_db))` — the per-segment error
    /// rate, keyed on the dB-domain Eb/N0 so one lookup replaces the whole
    /// `powf`+`erfc` chain. Within a packet the fade is fixed and the
    /// interference alternates between a few power states, so consecutive
    /// segments repeat a handful of keys even though the fade makes every
    /// *packet* unique.
    #[inline]
    pub fn dqpsk_ber_from_db(&mut self, ebn0_db: f64) -> f64 {
        self.ber_from_ebn0_db
            .get_or_insert(ebn0_db, |db| dqpsk_ber(db_to_linear(db)))
    }

    /// Memoized `e^(−x)` (the Poisson inversion threshold in
    /// [`crate::link::sample_bit_errors`]; segment lengths repeat in
    /// periodic interference schedules, so the mean does too).
    #[inline]
    pub fn exp_neg(&mut self, x: f64) -> f64 {
        self.exp_neg.get_or_insert(x, |x| (-x).exp())
    }
}

/// The reusable reception workspace threaded from the simulator's runner
/// through [`crate::link::LinkModel::receive_with`]. See the module docs
/// for what it caches and who may own it.
#[derive(Debug, Default, Clone)]
pub struct RxScratch {
    /// Exact-value math memos.
    cache: Option<Box<ChannelCache>>,
    /// Cut-point buffer for timeline construction.
    cuts: Vec<u64>,
    /// Segment buffer (also the one-entry timeline cache's value).
    segments: Vec<Segment>,
    /// Timeline cache key: the emission list the current `segments` were
    /// built from, plus the packet length. Valid only when `timeline_valid`.
    key_emissions: Vec<Emission>,
    key_len_bits: u64,
    timeline_valid: bool,
    /// Recycled error-bit vectors, ready for reuse.
    error_buf_pool: Vec<Vec<u64>>,
}

impl RxScratch {
    /// A fresh scratch. Buffers grow to steady-state capacity over the
    /// first few packets and are then reused indefinitely.
    pub fn new() -> RxScratch {
        RxScratch::default()
    }

    /// Returns the segment timeline for `(emissions, len_bits)`, rebuilding
    /// only when the pair differs from the previous call. Power sums inside
    /// segments go through the exact-value cache, so a rebuilt timeline is
    /// bit-identical to the uncached [`segment_timeline_into`] output.
    pub(crate) fn segments_for(&mut self, emissions: &[Emission], len_bits: u64) -> &[Segment] {
        if !(self.timeline_valid
            && self.key_len_bits == len_bits
            && self.key_emissions == emissions)
        {
            let cache = self
                .cache
                .get_or_insert_with(|| Box::new(ChannelCache::new()));
            segment_timeline_into(
                emissions,
                len_bits,
                &mut self.cuts,
                &mut self.segments,
                |db| cache.db_to_linear(db),
            );
            self.key_emissions.clear();
            self.key_emissions.extend_from_slice(emissions);
            self.key_len_bits = len_bits;
            self.timeline_valid = true;
        }
        &self.segments
    }

    /// Splits the scratch into the pieces `receive_with` needs
    /// simultaneously: the math cache and the (already prepared) segments.
    #[inline]
    pub(crate) fn cache_and_segments(&mut self) -> (&mut ChannelCache, &[Segment]) {
        let cache = self
            .cache
            .get_or_insert_with(|| Box::new(ChannelCache::new()));
        (cache, &self.segments)
    }

    /// Takes a recycled error-bit buffer (empty, capacity preserved) or a
    /// fresh one if the pool is dry.
    #[inline]
    pub(crate) fn take_error_buf(&mut self) -> Vec<u64> {
        self.error_buf_pool.pop().unwrap_or_default()
    }

    /// Returns an error-bit vector to the pool for reuse. Call this with
    /// `std::mem::take(&mut reception.error_bits)` once a reception has
    /// been fully consumed; the next damaged packet then reuses the
    /// allocation instead of growing a fresh vector.
    #[inline]
    pub fn recycle_error_buf(&mut self, mut buf: Vec<u64>) {
        // An unbounded pool cannot form: each in-flight reception holds at
        // most one buffer, but cap it anyway so a caller that recycles
        // foreign vectors cannot hoard memory.
        if self.error_buf_pool.len() < 8 {
            buf.clear();
            self.error_buf_pool.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_returns_exact_values() {
        let mut cache = ChannelCache::new();
        for db in [-120.0, -88.5, -48.0, 0.0, 7.403, 27.0] {
            // First call computes, second call hits; both must be the exact
            // direct computation.
            assert_eq!(cache.db_to_linear(db).to_bits(), db_to_linear(db).to_bits());
            assert_eq!(cache.db_to_linear(db).to_bits(), db_to_linear(db).to_bits());
            let mw = db_to_linear(db);
            assert_eq!(cache.mw_to_dbm(mw).to_bits(), mw_to_dbm(mw).to_bits());
            assert_eq!(
                cache.dqpsk_ber_from_db(db).to_bits(),
                dqpsk_ber(db_to_linear(db)).to_bits()
            );
            assert_eq!(
                cache.exp_neg(db.abs()).to_bits(),
                (-db.abs()).exp().to_bits()
            );
        }
    }

    #[test]
    fn memo_handles_colliding_and_negative_zero_keys() {
        let mut cache = ChannelCache::new();
        // -0.0 and 0.0 have different bit patterns: distinct keys, and each
        // must return its own exact value.
        assert_eq!(cache.db_to_linear(0.0), 1.0);
        assert_eq!(cache.db_to_linear(-0.0), db_to_linear(-0.0));
        // Hammer many distinct keys (forcing collisions/overwrites in the
        // direct-mapped table); values must stay exact throughout.
        for i in 0..10_000 {
            let db = -120.0 + (i as f64) * 0.013;
            assert_eq!(cache.db_to_linear(db).to_bits(), db_to_linear(db).to_bits());
        }
    }

    #[test]
    fn timeline_cache_invalidates_on_changed_emissions() {
        use crate::interference::InterferenceKind;
        let em = |p: f64| Emission {
            start_bit: 100,
            end_bit: 700,
            raw_dbm: p,
            kind: InterferenceKind::WidebandInBand,
        };
        let mut scratch = RxScratch::new();
        let n1 = scratch.segments_for(&[em(-50.0)], 1_000).len();
        assert_eq!(n1, 3);
        // Same inputs: cache hit, same answer.
        assert_eq!(scratch.segments_for(&[em(-50.0)], 1_000).len(), 3);
        // Changed power: rebuild with the new emission's power.
        let seg_mw = scratch.segments_for(&[em(-44.0)], 1_000)[1].despread_mw;
        assert!(seg_mw > 0.0);
        // Changed length: rebuild.
        assert_eq!(scratch.segments_for(&[em(-50.0)], 800).len(), 3);
        assert_eq!(scratch.key_len_bits, 800);
    }

    #[test]
    fn error_buf_pool_recycles_capacity() {
        let mut scratch = RxScratch::new();
        let mut buf = scratch.take_error_buf();
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        scratch.recycle_error_buf(buf);
        let buf = scratch.take_error_buf();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
    }
}
