//! The Gilbert–Elliott two-state burst-error channel.
//!
//! The syndromes the testbed observes under interference are *bursty*: a
//! phone burst concentrates errors in a stretch of the packet. The classic
//! compact model for such channels is Gilbert–Elliott: a two-state Markov
//! chain (Good/Bad) with per-state bit error rates. It serves two roles
//! here:
//!
//! * a *generator* — a cheap standalone channel for FEC experiments that
//!   want burstiness without running the whole testbed;
//! * a *descriptor* — [`GilbertElliott::fit`] estimates the four parameters
//!   from an observed error sequence, which is how
//!   `wavelan_analysis::bursts` characterizes measured traces (and how one
//!   chooses an interleaver depth: it should exceed the mean bad-state
//!   sojourn).

use rand::Rng;

/// Two-state Markov burst channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// P(Good → Bad) per bit.
    pub p_good_to_bad: f64,
    /// P(Bad → Good) per bit.
    pub p_bad_to_good: f64,
    /// Bit error rate while Good.
    pub ber_good: f64,
    /// Bit error rate while Bad.
    pub ber_bad: f64,
}

/// Channel state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Low-error state.
    Good,
    /// Burst state.
    Bad,
}

impl GilbertElliott {
    /// Builds a channel; probabilities must be in `[0, 1]`.
    pub fn new(p_gb: f64, p_bg: f64, ber_good: f64, ber_bad: f64) -> GilbertElliott {
        for p in [p_gb, p_bg, ber_good, ber_bad] {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
        GilbertElliott {
            p_good_to_bad: p_gb,
            p_bad_to_good: p_bg,
            ber_good,
            ber_bad,
        }
    }

    /// Stationary probability of being in the Bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            return 0.0;
        }
        self.p_good_to_bad / denom
    }

    /// Long-run average bit error rate.
    pub fn mean_ber(&self) -> f64 {
        let pb = self.stationary_bad();
        pb * self.ber_bad + (1.0 - pb) * self.ber_good
    }

    /// Mean sojourn length (bits) in the Bad state — the expected burst
    /// extent, the quantity an interleaver depth must exceed.
    pub fn mean_bad_sojourn(&self) -> f64 {
        if self.p_bad_to_good == 0.0 {
            return f64::INFINITY;
        }
        1.0 / self.p_bad_to_good
    }

    /// Generates an error indicator sequence of `n` bits (true = bit error),
    /// starting from the stationary distribution.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<bool> {
        let mut out = Vec::new();
        self.generate_into(n, rng, &mut out);
        out
    }

    /// [`GilbertElliott::generate`] into a caller-provided buffer: the RNG
    /// draw sequence is identical, but steady-state callers reuse the
    /// buffer's capacity instead of allocating per walk.
    pub fn generate_into<R: Rng + ?Sized>(&self, n: usize, rng: &mut R, out: &mut Vec<bool>) {
        let mut walk = GeWalker::new(*self);
        walk.restart(rng);
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(walk.next(rng));
        }
    }

    /// Starts an incremental walk over this channel; see [`GeWalker`].
    pub fn walker(&self) -> GeWalker {
        GeWalker::new(*self)
    }
}

/// A per-bit view of the walk [`GilbertElliott::generate_into`] produces.
///
/// [`GeWalker::restart`] makes the stationary state draw that opens a
/// `generate` call; each [`GeWalker::next`] then makes that call's per-bit
/// draws (error, then transition) in the same order. Consuming `k` bits
/// through this API yields exactly the first `k` bits of a `generate` call
/// on the same RNG — callers that would otherwise over-generate (e.g. a
/// HARQ loop that stops mid-chunk) draw only what they consume, and since
/// the walk is sequential the consumed prefix is bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct GeWalker {
    channel: GilbertElliott,
    state: ChannelState,
}

impl GeWalker {
    fn new(channel: GilbertElliott) -> GeWalker {
        GeWalker {
            channel,
            state: ChannelState::Good,
        }
    }

    /// Redraws the state from the stationary distribution — the draw that
    /// begins every [`GilbertElliott::generate_into`] call.
    pub fn restart<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.state = if rng.gen::<f64>() < self.channel.stationary_bad() {
            ChannelState::Bad
        } else {
            ChannelState::Good
        };
    }

    /// Advances one bit: returns the error indicator, then steps the state.
    pub fn next<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let ber = match self.state {
            ChannelState::Good => self.channel.ber_good,
            ChannelState::Bad => self.channel.ber_bad,
        };
        let error = rng.gen::<f64>() < ber;
        self.state = match self.state {
            ChannelState::Good if rng.gen::<f64>() < self.channel.p_good_to_bad => {
                ChannelState::Bad
            }
            ChannelState::Bad if rng.gen::<f64>() < self.channel.p_bad_to_good => {
                ChannelState::Good
            }
            s => s,
        };
        error
    }
}

impl GilbertElliott {
    /// Fits Gilbert–Elliott parameters to an observed error sequence using
    /// the standard gap-statistics method (Gilbert's original recipe):
    /// errors closer than `burst_gap` bits apart are deemed the same burst;
    /// burst interiors estimate the Bad state, the rest the Good state.
    /// Returns `None` when the sequence carries fewer than two errors.
    pub fn fit(errors: &[bool], burst_gap: usize) -> Option<GilbertElliott> {
        let positions: Vec<usize> = errors
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| i)
            .collect();
        if positions.len() < 2 {
            return None;
        }
        // Partition into bursts.
        let mut bursts: Vec<(usize, usize)> = Vec::new(); // inclusive spans
        let mut start = positions[0];
        let mut prev = positions[0];
        for &p in &positions[1..] {
            if p - prev > burst_gap {
                bursts.push((start, prev));
                start = p;
            }
            prev = p;
        }
        bursts.push((start, prev));

        let bad_bits: usize = bursts.iter().map(|&(s, e)| e - s + 1).sum();
        let good_bits = errors.len() - bad_bits;
        let errors_in_bursts: usize = positions.len();
        // Errors that are singleton bursts still sit in "bad" spans of length
        // 1; Good-state errors are (approximately) none under this partition,
        // so estimate the good BER from inter-burst stretches being clean and
        // regularize with a +1 smoothing.
        let ber_bad = errors_in_bursts as f64 / bad_bits.max(1) as f64;
        let ber_good = 1.0 / (good_bits.max(1) as f64 + 1.0); // upper-ish bound, regularized
        let mean_sojourn = bad_bits as f64 / bursts.len() as f64;
        let p_bg = (1.0 / mean_sojourn).min(1.0);
        let p_gb = (bursts.len() as f64 / good_bits.max(1) as f64).min(1.0);
        Some(GilbertElliott::new(
            p_gb,
            p_bg,
            ber_good.min(1.0),
            ber_bad.min(1.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reference() -> GilbertElliott {
        // Bursty: ~0.1% of time in Bad, bursts ~50 bits, heavy errors inside.
        GilbertElliott::new(2e-5, 0.02, 1e-6, 0.3)
    }

    #[test]
    fn stationary_and_mean_ber() {
        let ch = reference();
        let pb = ch.stationary_bad();
        assert!((pb - 2e-5 / (2e-5 + 0.02)).abs() < 1e-12);
        assert!((ch.mean_ber() - (pb * 0.3 + (1.0 - pb) * 1e-6)).abs() < 1e-12);
        assert!((ch.mean_bad_sojourn() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn generated_error_rate_matches_theory() {
        let ch = reference();
        let mut rng = StdRng::seed_from_u64(1);
        // The estimator's relative noise is ~1/sqrt(bad bursts); at 4M bits
        // (~80 bursts) seed luck dominates the 15% tolerance, so use 16M.
        let n = 16_000_000;
        let errors = ch.generate(n, &mut rng);
        let rate = errors.iter().filter(|&&e| e).count() as f64 / n as f64;
        assert!(
            (rate - ch.mean_ber()).abs() / ch.mean_ber() < 0.15,
            "rate {rate} vs theory {}",
            ch.mean_ber()
        );
    }

    #[test]
    fn generated_errors_are_bursty() {
        // Compare gap structure against an iid channel of the same mean BER:
        // the GE channel's median inter-error gap is far smaller.
        let ch = reference();
        let mut rng = StdRng::seed_from_u64(2);
        let errors = ch.generate(2_000_000, &mut rng);
        let gaps: Vec<usize> = {
            let pos: Vec<usize> = errors
                .iter()
                .enumerate()
                .filter(|(_, &e)| e)
                .map(|(i, _)| i)
                .collect();
            pos.windows(2).map(|w| w[1] - w[0]).collect()
        };
        assert!(gaps.len() > 50);
        let mut sorted = gaps.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let iid_median = (0.693 / ch.mean_ber()) as usize; // ln2/p
        assert!(
            median < iid_median / 20,
            "median gap {median} not bursty vs iid {iid_median}"
        );
    }

    #[test]
    fn fit_recovers_burst_structure() {
        let ch = reference();
        let mut rng = StdRng::seed_from_u64(3);
        let errors = ch.generate(4_000_000, &mut rng);
        let fitted = GilbertElliott::fit(&errors, 200).expect("enough errors");
        // Mean BER and burst length recovered within a factor of ~2.
        assert!(
            fitted.mean_ber() / ch.mean_ber() < 2.0 && ch.mean_ber() / fitted.mean_ber() < 2.0,
            "mean BER {} vs {}",
            fitted.mean_ber(),
            ch.mean_ber()
        );
        // Fitted bursts are measured between first and last error of a
        // sojourn, so they run a bit short of the true sojourn; same order.
        assert!(
            fitted.mean_bad_sojourn() > ch.mean_bad_sojourn() / 4.0
                && fitted.mean_bad_sojourn() < ch.mean_bad_sojourn() * 4.0,
            "sojourn {} vs {}",
            fitted.mean_bad_sojourn(),
            ch.mean_bad_sojourn()
        );
        assert!(fitted.ber_bad > 0.05, "{fitted:?}");
    }

    #[test]
    fn fit_needs_two_errors() {
        assert!(GilbertElliott::fit(&[false; 100], 10).is_none());
        let mut one = vec![false; 100];
        one[3] = true;
        assert!(GilbertElliott::fit(&one, 10).is_none());
    }

    #[test]
    fn degenerate_channels() {
        let clean = GilbertElliott::new(0.0, 1.0, 0.0, 0.0);
        assert_eq!(clean.stationary_bad(), 0.0);
        assert_eq!(clean.mean_ber(), 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(clean.generate(10_000, &mut rng).iter().all(|&e| !e));

        let stuck_bad = GilbertElliott::new(1.0, 0.0, 0.0, 1.0);
        assert_eq!(stuck_bad.stationary_bad(), 1.0);
        assert!(stuck_bad.mean_bad_sojourn().is_infinite());
    }
}
