//! Large-scale propagation: free-space and log-distance path loss.
//!
//! The paper observes that "distance alone seemed to have little effect in a
//! fairly large area" (Section 10) — indoor log-distance attenuation over tens
//! of feet costs only a handful of AGC level units — while walls and bodies
//! dominate. We model the distance term with the standard log-distance form
//!
//! ```text
//! PL(d) = PL(d0) + 10·n·log10(d / d0)
//! ```
//!
//! calibrated at `d0 = 1 m` from the free-space loss at 915 MHz, with an
//! indoor exponent `n` (default 2.2 — see `wavelan-core::calibration` for how
//! this value is pinned against the paper's Tables 6 and 9).

/// Feet → meters (the paper reports all distances in feet).
pub const FEET_TO_METERS: f64 = 0.3048;

/// Free-space path loss in dB at distance `d_m` meters and frequency `f_hz`.
///
/// `FSPL = 20·log10(d) + 20·log10(f) − 147.55` (d in m, f in Hz).
pub fn free_space_db(d_m: f64, f_hz: f64) -> f64 {
    // Guard the near-field singularity: clamp below 10 cm.
    let d = d_m.max(0.1);
    20.0 * d.log10() + 20.0 * f_hz.log10() - 147.55
}

/// Log-distance path loss model.
#[derive(Debug, Clone, Copy)]
pub struct LogDistance {
    /// Reference loss at `d0 = 1 m`, dB.
    pub pl0_db: f64,
    /// Path loss exponent (2 = free space; 2–4 typical indoors).
    pub exponent: f64,
}

impl LogDistance {
    /// An indoor model at the given carrier: free-space reference at 1 m plus
    /// the supplied exponent.
    pub fn indoor(f_hz: f64, exponent: f64) -> LogDistance {
        LogDistance {
            pl0_db: free_space_db(1.0, f_hz),
            exponent,
        }
    }

    /// Path loss in dB at distance `d_m` meters. Distances under 0.3 m clamp
    /// (physical contact of the two modem units in Figure 1's zero point).
    pub fn loss_db(&self, d_m: f64) -> f64 {
        let d = d_m.max(0.3);
        self.pl0_db + 10.0 * self.exponent * d.log10()
    }

    /// Convenience: path loss at a distance given in feet.
    pub fn loss_db_feet(&self, d_ft: f64) -> f64 {
        self.loss_db(d_ft * FEET_TO_METERS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_at_915mhz_1m() {
        // Known anchor: FSPL(1 m, 915 MHz) ≈ 31.7 dB.
        let l = free_space_db(1.0, 915.0e6);
        assert!((l - 31.68).abs() < 0.05, "{l}");
    }

    #[test]
    fn free_space_doubles_distance_costs_6db() {
        let a = free_space_db(10.0, 915.0e6);
        let b = free_space_db(20.0, 915.0e6);
        assert!((b - a - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn log_distance_reduces_to_free_space_when_n_2() {
        let m = LogDistance::indoor(915.0e6, 2.0);
        for d in [1.0, 3.0, 10.0, 30.0] {
            assert!((m.loss_db(d) - free_space_db(d, 915.0e6)).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_exponent_attenuates_more() {
        let lo = LogDistance::indoor(915.0e6, 2.0);
        let hi = LogDistance::indoor(915.0e6, 3.0);
        assert!(hi.loss_db(20.0) > lo.loss_db(20.0));
        assert!((hi.loss_db(10.0) - lo.loss_db(10.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn contact_distance_clamps() {
        let m = LogDistance::indoor(915.0e6, 2.2);
        assert_eq!(m.loss_db(0.0), m.loss_db(0.3));
        assert!(m.loss_db(0.0).is_finite());
    }

    #[test]
    fn feet_conversion() {
        let m = LogDistance::indoor(915.0e6, 2.2);
        assert!((m.loss_db_feet(10.0) - m.loss_db(3.048)).abs() < 1e-12);
    }

    #[test]
    fn loss_is_monotone_in_distance() {
        let m = LogDistance::indoor(915.0e6, 2.2);
        let mut prev = m.loss_db(0.3);
        for i in 1..100 {
            let d = 0.3 + f64::from(i) * 0.5;
            let l = m.loss_db(d);
            assert!(l >= prev);
            prev = l;
        }
    }
}
