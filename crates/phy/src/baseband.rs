//! Minimal complex-baseband toolkit for the chip-level modem.
//!
//! The event-driven experiments never touch this module (they use closed-form
//! error rates); it exists so the modem chain — DQPSK → spreading → AWGN →
//! despreading → DQPSK demod — can be simulated end-to-end and the closed
//! forms validated against it.

use rand::Rng;

/// A complex sample. Deliberately tiny: just what the modem chain needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// In-phase component.
    pub re: f64,
    /// Quadrature component.
    pub im: f64,
}

impl Complex {
    /// Constructs from rectangular coordinates.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// The unit phasor `e^{jθ}`.
    pub fn from_phase(theta: f64) -> Complex {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Argument (phase) in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Complex {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl core::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl core::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl core::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

/// Draws a zero-mean Gaussian sample with the given standard deviation using
/// the Box–Muller transform. We avoid `rand_distr` to stay within the
/// approved dependency set.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    // Box–Muller; u1 in (0,1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Adds complex AWGN of per-component variance `n0/2` to each sample, i.e.
/// total noise power `n0` per complex sample.
pub fn add_awgn<R: Rng + ?Sized>(rng: &mut R, samples: &mut [Complex], n0: f64) {
    let sigma = (n0 / 2.0).sqrt();
    for s in samples {
        s.re += gaussian(rng, sigma);
        s.im += gaussian(rng, sigma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a * b;
        assert!((p.re - 5.0).abs() < 1e-12);
        assert!((p.im - 5.0).abs() < 1e-12);
        assert_eq!((a + b).re, 4.0);
        assert_eq!((a - b).im, 3.0);
        assert_eq!(a.conj().im, -2.0);
    }

    #[test]
    fn phasor_magnitude_is_one() {
        for k in 0..8 {
            let z = Complex::from_phase(k as f64 * 0.7);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arg_round_trip() {
        for theta in [-3.0, -1.5, 0.0, 0.3, 1.2, 3.1] {
            let z = Complex::from_phase(theta);
            assert!((z.arg() - theta).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let sigma = 2.5;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!(
            (var - sigma * sigma).abs() / (sigma * sigma) < 0.02,
            "var {var}"
        );
    }

    #[test]
    fn awgn_power_matches_n0() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut samples = vec![Complex::default(); 100_000];
        let n0 = 0.8;
        add_awgn(&mut rng, &mut samples, n0);
        let power = samples.iter().map(|s| s.norm_sq()).sum::<f64>() / samples.len() as f64;
        assert!((power - n0).abs() / n0 < 0.03, "power {power}");
    }
}
