//! Numeric helpers: complementary error function, Gaussian tail probability,
//! and decibel conversions.
//!
//! Implemented locally (rather than pulling in a special-functions crate)
//! because the whole PHY needs exactly two special functions and the
//! Abramowitz & Stegun rational approximation is accurate to ~1.5e-7, far
//! below the statistical noise of any experiment in the paper.

/// Complementary error function, `erfc(x) = 1 - erf(x)`.
///
/// Uses Abramowitz & Stegun formula 7.1.26 with the symmetry
/// `erfc(-x) = 2 - erfc(x)`. Maximum absolute error ≈ 1.5e-7.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    // A&S 7.1.26 constants.
    const P: f64 = 0.3275911;
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    let t = 1.0 / (1.0 + P * x);
    let poly = t * (A1 + t * (A2 + t * (A3 + t * (A4 + t * A5))));
    poly * (-x * x).exp()
}

/// Gaussian tail probability `Q(x) = P[N(0,1) > x] = erfc(x / √2) / 2`.
pub fn q(x: f64) -> f64 {
    0.5 * erfc(x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Converts a decibel ratio to a linear power ratio.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to decibels. Clamps zero/negative input to
/// a very small floor so callers can safely take the dB of an empty power sum.
pub fn linear_to_db(lin: f64) -> f64 {
    10.0 * lin.max(1e-30).log10()
}

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    db_to_linear(dbm)
}

/// Converts milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    linear_to_db(mw)
}

/// Sums a set of powers expressed in dBm, returning dBm.
///
/// This is the operation an AGC performs implicitly: co-channel powers add in
/// the linear domain.
pub fn dbm_sum<I: IntoIterator<Item = f64>>(powers_dbm: I) -> f64 {
    let total_mw: f64 = powers_dbm.into_iter().map(dbm_to_mw).sum();
    mw_to_dbm(total_mw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        // Reference values from standard tables.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn q_known_values() {
        assert!((q(0.0) - 0.5).abs() < 1e-9);
        assert!((q(1.0) - 0.158_655_3).abs() < 1e-6);
        assert!((q(3.0) - 1.349_898e-3).abs() < 1e-7);
        // Q is monotone decreasing.
        assert!(q(2.0) > q(2.5));
    }

    #[test]
    fn db_round_trip() {
        for db in [-100.0, -3.0, 0.0, 3.0, 27.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn db_to_linear_anchors() {
        assert!((db_to_linear(3.0103) - 2.0).abs() < 1e-4);
        assert!((db_to_linear(10.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_sum_of_equal_powers_adds_3db() {
        let sum = dbm_sum([-50.0, -50.0]);
        assert!((sum - (-46.9897)).abs() < 1e-3);
    }

    #[test]
    fn dbm_sum_dominated_by_strongest() {
        let sum = dbm_sum([-40.0, -80.0]);
        assert!((sum - (-40.0)).abs() < 0.01);
    }

    #[test]
    fn linear_to_db_handles_zero() {
        assert!(linear_to_db(0.0).is_finite());
        assert!(linear_to_db(0.0) < -250.0);
    }
}
