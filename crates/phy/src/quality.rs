//! The 4-bit *signal quality* metric.
//!
//! Paper Section 2: "The signal quality (4 bits) is sampled just after the
//! beginning of the packet and is derived from the information the receiver
//! uses to select between the two antennas" — i.e. from the confidence of the
//! chip correlator / diversity combiner, not from absolute power.
//!
//! The study's key empirical findings about quality, which this model is
//! calibrated to reproduce:
//!
//! * quality pins at 15 whenever the despread SINR is comfortable, *even at
//!   low signal level* (Table 6: Tx5 at level 9.5 still shows quality 15);
//! * "Very low signal quality seems to be a good predictor of truncation"
//!   (Section 7.3; Table 13 truncated μ ≈ 8.8);
//! * "If the signal level is high but signal quality is not outstanding, bit
//!   errors are likely" (Section 7.3; Table 13 body-damaged μ ≈ 13.6);
//! * narrowband interference leaves quality at 15 because the correlator
//!   suppresses it (Table 10).

use crate::baseband::gaussian;
use rand::Rng;

/// Largest reportable quality (4-bit field).
pub const MAX_QUALITY: u8 = 15;

/// Maps despread-domain SINR to the reported 4-bit quality.
#[derive(Debug, Clone, Copy)]
pub struct QualityModel {
    /// Despread SINR (dB) below which quality starts to fall.
    pub knee_sinr_db: f64,
    /// Quality units lost per dB below the knee.
    pub slope_units_per_db: f64,
    /// Reporting jitter, in quality units.
    pub jitter_sigma: f64,
}

impl Default for QualityModel {
    fn default() -> Self {
        QualityModel {
            // At ≥5 dB despread SINR the correlator is fully confident.
            knee_sinr_db: 5.0,
            // ≈0.8 units/dB reproduces Table 13's truncated μ≈8.8 at the
            // jam-adjacent SINRs and Table 3's truncated μ≈10.
            slope_units_per_db: 0.8,
            jitter_sigma: 0.22,
        }
    }
}

impl QualityModel {
    /// Reports quality for the given despread-domain SINR observed over the
    /// early part of the packet (the minimum across early segments — a nearby
    /// interference burst drags quality down even when the exact sampling
    /// instant was clean).
    pub fn report<R: Rng + ?Sized>(&self, early_min_sinr_db: f64, rng: &mut R) -> u8 {
        let penalty = (self.knee_sinr_db - early_min_sinr_db).max(0.0) * self.slope_units_per_db;
        let q = f64::from(MAX_QUALITY) - penalty + gaussian(rng, self.jitter_sigma);
        q.round().clamp(1.0, f64::from(MAX_QUALITY)) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_quality(sinr_db: f64) -> f64 {
        let mut rng = StdRng::seed_from_u64(3);
        let m = QualityModel::default();
        let n = 20_000;
        (0..n)
            .map(|_| f64::from(m.report(sinr_db, &mut rng)))
            .sum::<f64>()
            / f64::from(n)
    }

    #[test]
    fn comfortable_sinr_pins_at_15() {
        // Tx5 in Table 6: low level but clean channel → quality 15.
        assert!(mean_quality(9.0) > 14.9);
        assert!(mean_quality(30.0) > 14.9);
    }

    #[test]
    fn jam_adjacent_sinr_matches_truncation_signature() {
        // Table 13: truncated packets under SS-phone interference μ ≈ 8.8.
        let q = mean_quality(-2.5);
        assert!((7.5..10.5).contains(&q), "{q}");
    }

    #[test]
    fn moderate_degradation_matches_bit_error_signature() {
        // Table 13: body-damaged μ ≈ 13.6 — "not outstanding".
        let q = mean_quality(3.0);
        assert!((12.5..14.7).contains(&q), "{q}");
    }

    #[test]
    fn quality_is_monotone_in_sinr() {
        let mut prev = 0.0;
        for sinr in [-8.0, -4.0, 0.0, 3.0, 6.0] {
            let q = mean_quality(sinr);
            assert!(q >= prev, "quality not monotone at {sinr}: {q} < {prev}");
            prev = q;
        }
    }

    #[test]
    fn quality_never_reports_zero() {
        // The 4-bit field's observed floor in the paper's tables is 1.
        let mut rng = StdRng::seed_from_u64(4);
        let m = QualityModel::default();
        for _ in 0..1000 {
            assert!(m.report(-40.0, &mut rng) >= 1);
        }
    }
}
