//! Competing radiation sources (paper Section 7).
//!
//! Four interference classes, distinguished by what the WaveLAN front end and
//! despreader do to them:
//!
//! * **Narrowband, in-band** (FM cordless phones, Section 7.2): fully visible
//!   to the AGC (it raises the silence level) but suppressed by the
//!   despreading correlation — processing gain plus the narrowband line's
//!   decorrelation. The paper observed *zero* damage from these phones even
//!   "a few inches from the receiver's modem unit".
//! * **Wideband, in-band** (900 MHz spread-spectrum cordless phones, Section
//!   7.3): looks like noise to the correlator, so no suppression — and its
//!   chip structure collides with the desired chips, so it degrades the
//!   demodulator *more* than Gaussian noise of equal power (the
//!   `demod_penalty_db` term). This is the paper's worst interferer.
//! * **Out-of-band** (microwave oven, 144 MHz amateur transmitter, Section
//!   7.1): rejected by the front-end filters unless strong enough to overload
//!   them. The paper observed no errors; the overload path exists in the
//!   model so the mechanism can be explored.
//! * **WaveLAN** (competing units, Section 7.4): a same-waveform transmitter,
//!   suppressed by roughly the processing gain when chip-unaligned, fully
//!   visible to the AGC and to carrier sense.

use crate::baseband::gaussian;
use crate::spreading::processing_gain_db;
use rand::Rng;

/// Interference class, determining front-end and despreader behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterferenceKind {
    /// Narrowband FM inside the 902–928 MHz band.
    NarrowbandInBand,
    /// Spread-spectrum (wideband) energy inside the band.
    WidebandInBand,
    /// Energy outside the band (microwave oven, VHF transmitter).
    OutOfBand,
    /// Another WaveLAN transmitter.
    WaveLan,
}

impl InterferenceKind {
    /// Gain applied by the receive chain *before* the AGC measures power,
    /// in dB (0 = fully visible). Out-of-band energy is mostly filtered.
    pub fn agc_visibility_db(self) -> f64 {
        match self {
            InterferenceKind::NarrowbandInBand
            | InterferenceKind::WidebandInBand
            | InterferenceKind::WaveLan => 0.0,
            InterferenceKind::OutOfBand => -45.0,
        }
    }

    /// Change from raw received power to *effective* interference power in
    /// the despread (decision) domain, in dB.
    ///
    /// * Narrowband: −(processing gain + 17 dB line-decorrelation) ≈ −27 dB.
    ///   Calibrated so the paper's loudest cordless-FM case (silence level
    ///   ≈ 19, Table 10) still yields zero bit damage.
    /// * Wideband in-band: −4 dB. A foreign spread-spectrum waveform is
    ///   uncorrelated with the Barker code, so the correlator averages it
    ///   like noise (≈ −10.4 dB) — but its chip structure degrades the DQPSK
    ///   decision more than Gaussian noise of equal post-correlation power,
    ///   clawing back ≈6 dB. The net −4 dB jointly reproduces the paper's
    ///   three SS-phone regimes (jam / intermediate / harmless, Table 11).
    /// * Out-of-band: −60 dB after the front-end filters (when not
    ///   overloaded).
    /// * WaveLAN: −processing gain (chip-unaligned same-code interference
    ///   decorrelates like noise spread over 11 chips).
    pub fn despread_delta_db(self) -> f64 {
        match self {
            InterferenceKind::NarrowbandInBand => -(processing_gain_db(11) + 17.0),
            InterferenceKind::WidebandInBand => -4.0,
            InterferenceKind::OutOfBand => -60.0,
            InterferenceKind::WaveLan => -processing_gain_db(11),
        }
    }
}

/// Raw front-end power (dBm) above which out-of-band energy overloads the
/// receiver's early filter stages and leaks in as wideband noise (paper
/// Section 7.1's "front end overload"). The paper's microwave-oven and
/// 2 W VHF tests stayed below this and produced no errors.
pub const FRONT_END_OVERLOAD_DBM: f64 = -5.0;

/// Transmission pattern of an interferer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DutyCycle {
    /// Always on (FM phone carrier, saturating WaveLAN jammer).
    Continuous,
    /// Periodic bursts: `on_bits` of every `period_bits` (TDD phone frames).
    /// Times are expressed in units of 2 Mb/s bit durations (0.5 µs).
    Burst {
        /// Frame period.
        period_bits: u64,
        /// On-time per frame.
        on_bits: u64,
    },
}

/// One interval of interference overlapping a packet, in bit-time units
/// relative to the packet start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Emission {
    /// First bit index covered.
    pub start_bit: u64,
    /// One past the last bit index covered.
    pub end_bit: u64,
    /// Raw power at the receive antenna during this interval, dBm.
    pub raw_dbm: f64,
    /// Interference class.
    pub kind: InterferenceKind,
}

impl Emission {
    /// Power as seen by the AGC (after front-end filtering), dBm.
    pub fn agc_dbm(&self) -> f64 {
        self.raw_dbm + self.kind.agc_visibility_db()
    }

    /// Effective power in the despread decision domain, dBm. Out-of-band
    /// energy above the overload point bypasses the filters and lands as
    /// wideband noise 20 dB below its raw power.
    pub fn despread_dbm(&self) -> f64 {
        if self.kind == InterferenceKind::OutOfBand && self.raw_dbm > FRONT_END_OVERLOAD_DBM {
            self.raw_dbm - 20.0
        } else {
            self.raw_dbm + self.kind.despread_delta_db()
        }
    }
}

/// An interference source positioned near the receiver.
#[derive(Debug, Clone, Copy)]
pub struct Interferer {
    /// Interference class.
    pub kind: InterferenceKind,
    /// Mean raw power delivered to the victim receiver, dBm.
    pub power_dbm: f64,
    /// Transmission pattern.
    pub duty: DutyCycle,
    /// Per-burst lognormal power jitter, dB (0 for a stable carrier).
    pub burst_sigma_db: f64,
}

impl Interferer {
    /// A continuous interferer with no burst jitter.
    pub fn continuous(kind: InterferenceKind, power_dbm: f64) -> Interferer {
        Interferer {
            kind,
            power_dbm,
            duty: DutyCycle::Continuous,
            burst_sigma_db: 0.0,
        }
    }

    /// Produces the emission intervals overlapping a packet of `len_bits`
    /// bits. The burst phase is drawn uniformly per call, modelling the lack
    /// of synchronization between the interferer and the victim link. For
    /// *temporal* correlation across packets (loss runs, outage structure)
    /// use [`Interferer::emissions_at`], which anchors the phase to absolute
    /// time.
    pub fn emissions<R: Rng + ?Sized>(&self, len_bits: u64, rng: &mut R) -> Vec<Emission> {
        let mut out = Vec::new();
        self.emissions_into(len_bits, rng, &mut out);
        out
    }

    /// [`Interferer::emissions`], appending into a caller-owned buffer so
    /// the per-packet hot path can reuse its allocation. Identical RNG draw
    /// sequence and emissions as the allocating variant.
    pub fn emissions_into<R: Rng + ?Sized>(
        &self,
        len_bits: u64,
        rng: &mut R,
        out: &mut Vec<Emission>,
    ) {
        let phase = match self.duty {
            DutyCycle::Continuous => 0,
            DutyCycle::Burst { period_bits, .. } => rng.gen_range(0..period_bits),
        };
        self.emissions_with_phase_into(len_bits, phase, rng, out);
    }

    /// Emission intervals for a packet that starts at absolute bit-time
    /// `start_bit_time` — consecutive packets then see one *continuous*
    /// interferer timeline, so a 20 ms jammer on-period really swallows
    /// consecutive packets.
    pub fn emissions_at<R: Rng + ?Sized>(
        &self,
        start_bit_time: u64,
        len_bits: u64,
        rng: &mut R,
    ) -> Vec<Emission> {
        let mut out = Vec::new();
        self.emissions_at_into(start_bit_time, len_bits, rng, &mut out);
        out
    }

    /// [`Interferer::emissions_at`], appending into a caller-owned buffer.
    /// Identical RNG draw sequence and emissions as the allocating variant.
    pub fn emissions_at_into<R: Rng + ?Sized>(
        &self,
        start_bit_time: u64,
        len_bits: u64,
        rng: &mut R,
        out: &mut Vec<Emission>,
    ) {
        let phase = match self.duty {
            DutyCycle::Continuous => 0,
            DutyCycle::Burst { period_bits, .. } => start_bit_time % period_bits,
        };
        self.emissions_with_phase_into(len_bits, phase, rng, out);
    }

    /// The common core: `phase` is where in its frame the interferer is at
    /// the packet's bit 0. Appends to `out`.
    fn emissions_with_phase_into<R: Rng + ?Sized>(
        &self,
        len_bits: u64,
        phase: u64,
        rng: &mut R,
        out: &mut Vec<Emission>,
    ) {
        match self.duty {
            DutyCycle::Continuous => {
                let power = self.power_dbm + gaussian(rng, self.burst_sigma_db);
                out.push(Emission {
                    start_bit: 0,
                    end_bit: len_bits,
                    raw_dbm: power,
                    kind: self.kind,
                });
            }
            DutyCycle::Burst {
                period_bits,
                on_bits,
            } => {
                assert!(
                    period_bits > 0 && on_bits <= period_bits,
                    "invalid duty cycle"
                );
                assert!(phase < period_bits, "phase must lie within a period");
                // Walk frames covering [0, len_bits).
                let mut frame_start = -(phase as i64);
                while (frame_start as i128) < len_bits as i128 {
                    let on_start = frame_start;
                    let on_end = frame_start + on_bits as i64;
                    let s = on_start.max(0) as u64;
                    let e = (on_end.max(0) as u64).min(len_bits);
                    if e > s {
                        let power = self.power_dbm + gaussian(rng, self.burst_sigma_db);
                        out.push(Emission {
                            start_bit: s,
                            end_bit: e,
                            raw_dbm: power,
                            kind: self.kind,
                        });
                    }
                    frame_start += period_bits as i64;
                }
            }
        }
    }

    /// Fraction of time this interferer is on.
    pub fn duty_fraction(&self) -> f64 {
        match self.duty {
            DutyCycle::Continuous => 1.0,
            DutyCycle::Burst {
                period_bits,
                on_bits,
            } => on_bits as f64 / period_bits as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn narrowband_is_suppressed_wideband_is_not() {
        let nb = Emission {
            start_bit: 0,
            end_bit: 100,
            raw_dbm: -60.0,
            kind: InterferenceKind::NarrowbandInBand,
        };
        let wb = Emission {
            kind: InterferenceKind::WidebandInBand,
            ..nb
        };
        assert!(nb.despread_dbm() < -85.0, "{}", nb.despread_dbm());
        // Wideband is only partially suppressed: >20 dB more effective
        // interference than the narrowband line.
        assert!(
            wb.despread_dbm() > nb.despread_dbm() + 20.0,
            "{}",
            wb.despread_dbm()
        );
        // Both fully visible to the AGC.
        assert_eq!(nb.agc_dbm(), -60.0);
        assert_eq!(wb.agc_dbm(), -60.0);
    }

    #[test]
    fn out_of_band_rejected_below_overload() {
        let e = Emission {
            start_bit: 0,
            end_bit: 1,
            raw_dbm: -20.0,
            kind: InterferenceKind::OutOfBand,
        };
        assert!(e.agc_dbm() < -60.0);
        assert!(e.despread_dbm() < -75.0);
    }

    #[test]
    fn out_of_band_overload_leaks() {
        let e = Emission {
            start_bit: 0,
            end_bit: 1,
            raw_dbm: 0.0,
            kind: InterferenceKind::OutOfBand,
        };
        // Above the overload point: −20 dB leak instead of −60 dB rejection.
        assert!((e.despread_dbm() - (-20.0)).abs() < 1e-9);
    }

    #[test]
    fn wavelan_suppressed_by_processing_gain() {
        let e = Emission {
            start_bit: 0,
            end_bit: 1,
            raw_dbm: -70.0,
            kind: InterferenceKind::WaveLan,
        };
        assert!((e.despread_dbm() - (-80.41)).abs() < 0.01);
    }

    #[test]
    fn continuous_emissions_cover_packet() {
        let mut rng = StdRng::seed_from_u64(1);
        let i = Interferer::continuous(InterferenceKind::NarrowbandInBand, -70.0);
        let e = i.emissions(8560, &mut rng);
        assert_eq!(e.len(), 1);
        assert_eq!((e[0].start_bit, e[0].end_bit), (0, 8560));
        assert_eq!(e[0].raw_dbm, -70.0);
    }

    #[test]
    fn burst_emissions_respect_duty() {
        let mut rng = StdRng::seed_from_u64(2);
        let i = Interferer {
            kind: InterferenceKind::WidebandInBand,
            power_dbm: -45.0,
            duty: DutyCycle::Burst {
                period_bits: 8000,
                on_bits: 4000,
            },
            burst_sigma_db: 0.0,
        };
        // Average covered fraction over many draws ≈ 50%.
        let len = 8560u64;
        let n = 2000;
        let covered: u64 = (0..n)
            .map(|_| {
                i.emissions(len, &mut rng)
                    .iter()
                    .map(|e| e.end_bit - e.start_bit)
                    .sum::<u64>()
            })
            .sum();
        let frac = covered as f64 / (len * n) as f64;
        assert!((frac - 0.5).abs() < 0.02, "{frac}");
        assert!((i.duty_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn burst_emissions_are_sorted_and_disjoint() {
        let mut rng = StdRng::seed_from_u64(3);
        let i = Interferer {
            kind: InterferenceKind::WidebandInBand,
            power_dbm: -45.0,
            duty: DutyCycle::Burst {
                period_bits: 3000,
                on_bits: 1000,
            },
            burst_sigma_db: 2.0,
        };
        for _ in 0..200 {
            let es = i.emissions(8560, &mut rng);
            for w in es.windows(2) {
                assert!(w[0].end_bit <= w[1].start_bit, "{es:?}");
            }
            for e in &es {
                assert!(e.start_bit < e.end_bit);
                assert!(e.end_bit <= 8560);
            }
        }
    }

    #[test]
    fn every_long_packet_meets_a_burst() {
        // A packet longer than (period − on) must overlap at least one burst —
        // the mechanism behind the paper's "100% of received packets truncated"
        // under a nearby SS phone.
        let mut rng = StdRng::seed_from_u64(4);
        let i = Interferer {
            kind: InterferenceKind::WidebandInBand,
            power_dbm: -45.0,
            duty: DutyCycle::Burst {
                period_bits: 8000,
                on_bits: 4200,
            },
            burst_sigma_db: 0.0,
        };
        for _ in 0..500 {
            assert!(!i.emissions(8560, &mut rng).is_empty());
        }
    }

    #[test]
    fn burst_sigma_varies_power() {
        let mut rng = StdRng::seed_from_u64(5);
        let i = Interferer {
            kind: InterferenceKind::WidebandInBand,
            power_dbm: -50.0,
            duty: DutyCycle::Continuous,
            burst_sigma_db: 4.0,
        };
        let powers: Vec<f64> = (0..500)
            .map(|_| i.emissions(100, &mut rng)[0].raw_dbm)
            .collect();
        let mean = powers.iter().sum::<f64>() / powers.len() as f64;
        let var = powers.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / powers.len() as f64;
        assert!((mean - (-50.0)).abs() < 0.6, "{mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.5, "{}", var.sqrt());
    }
}
