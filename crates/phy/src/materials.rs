//! Obstacle materials and their attenuation.
//!
//! The paper measures attenuation in *AGC level units* (its Section 6):
//!
//! * a plaster wall with wire-mesh core costs ≈ 5 level units (Table 4),
//! * a concrete block wall costs ≈ 2 level units (Table 4) — "concrete walls
//!   seem to be less of a hindrance for these signals than plaster over wire
//!   mesh walls",
//! * a human body in the path costs ≈ 6 level units (Tables 8–9: level μ
//!   dropped from 12.55 to 6.73).
//!
//! The AGC mapping in [`crate::agc`] uses 1.5 dB per level unit, so the dB
//! figures below are `units × 1.5`.

/// Construction/obstacle material in a propagation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Material {
    /// Plaster over a wire-mesh core: the worst common wall in the study.
    PlasterWireMesh,
    /// Concrete block: surprisingly mild attenuation at 915 MHz.
    ConcreteBlock,
    /// A wooden or hollow door.
    WoodDoor,
    /// Drywall / gypsum partition (not measured in the paper; typical value).
    Drywall,
    /// A metal obstacle (filing cabinet, whiteboard backing); strong shadow.
    Metal,
    /// A human body directly in the path (Section 6.3).
    HumanBody,
    /// Classroom/office furniture clutter along the path.
    Furniture,
    /// A custom attenuation in tenths of a dB (for sensitivity sweeps).
    CustomTenthsDb(u16),
}

impl Material {
    /// Attenuation of one traversal, in dB.
    pub fn attenuation_db(&self) -> f64 {
        // 1 level unit = 1.5 dB (see `agc::DB_PER_LEVEL_UNIT`).
        match self {
            Material::PlasterWireMesh => 7.5, // 5 level units (Table 4, wall 1)
            Material::ConcreteBlock => 3.0,   // 2 level units (Table 4, wall 2)
            Material::WoodDoor => 2.0,
            Material::Drywall => 2.5,
            Material::Metal => 12.0,
            Material::HumanBody => 8.7, // ≈5.8 level units (Tables 8–9)
            Material::Furniture => 1.5,
            Material::CustomTenthsDb(tenths) => f64::from(*tenths) / 10.0,
        }
    }

    /// Attenuation in AGC level units (1.5 dB each), for reasoning in the
    /// paper's own units.
    pub fn attenuation_level_units(&self) -> f64 {
        self.attenuation_db() / crate::agc::DB_PER_LEVEL_UNIT
    }
}

/// Total attenuation of a path crossing the given materials, in dB.
pub fn path_attenuation_db(materials: &[Material]) -> f64 {
    materials.iter().map(Material::attenuation_db).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_wall_units() {
        // Table 4: plaster+mesh ≈ 5 units, concrete ≈ 2 units.
        assert!((Material::PlasterWireMesh.attenuation_level_units() - 5.0).abs() < 0.1);
        assert!((Material::ConcreteBlock.attenuation_level_units() - 2.0).abs() < 0.1);
    }

    #[test]
    fn paper_calibration_body_units() {
        // Tables 8–9: body costs just under 6 units.
        let units = Material::HumanBody.attenuation_level_units();
        assert!((5.0..7.0).contains(&units), "{units}");
    }

    #[test]
    fn concrete_milder_than_plaster() {
        assert!(
            Material::ConcreteBlock.attenuation_db() < Material::PlasterWireMesh.attenuation_db()
        );
    }

    #[test]
    fn path_attenuation_sums() {
        let path = [
            Material::ConcreteBlock,
            Material::ConcreteBlock,
            Material::WoodDoor,
        ];
        assert!((path_attenuation_db(&path) - 8.0).abs() < 1e-12);
        assert_eq!(path_attenuation_db(&[]), 0.0);
    }

    #[test]
    fn custom_material() {
        assert!((Material::CustomTenthsDb(45).attenuation_db() - 4.5).abs() < 1e-12);
    }
}
