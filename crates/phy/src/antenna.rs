//! Dual-antenna selection diversity.
//!
//! "The receiver selects between two perpendicular antennas and multiple
//! incoming signal paths to combat multipath interference" (paper Section 2).
//! Each packet, the receiver evaluates the preamble on both antennas and
//! commits to the better one; the *antenna selected* is part of the status
//! reported to the host.
//!
//! We model the per-antenna small-scale fade as an independent Gaussian
//! perturbation in dB and take the max. Selection diversity is why the
//! effective per-packet fade distribution has a much thinner deep-fade tail
//! than a single Rayleigh branch would — one of the reasons the paper found
//! WaveLAN "explicitly designed to resist" multipath effects.

use crate::baseband::gaussian;
use rand::Rng;

/// Which of the two antennas the receiver committed to for a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Antenna {
    /// First antenna.
    A = 0,
    /// Second (perpendicular) antenna.
    B = 1,
}

impl Antenna {
    /// Numeric id as reported in the modem status (0 or 1).
    pub fn id(self) -> u8 {
        self as u8
    }
}

/// Per-packet diversity fade model.
#[derive(Debug, Clone, Copy)]
pub struct DiversityReceiver {
    /// Standard deviation of the per-antenna packet fade, dB.
    pub branch_sigma_db: f64,
}

impl Default for DiversityReceiver {
    fn default() -> Self {
        // Calibrated jointly with the link model so that the fraction of
        // body-damaged packets at the paper's human-body operating point
        // (~6 dB mean SINR) lands near Table 8's ≈15%.
        DiversityReceiver {
            branch_sigma_db: 2.6,
        }
    }
}

impl DiversityReceiver {
    /// Draws the two branch fades for one packet and returns the selected
    /// antenna and the selected (max) fade in dB.
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R) -> (Antenna, f64) {
        let fade_a = gaussian(rng, self.branch_sigma_db);
        let fade_b = gaussian(rng, self.branch_sigma_db);
        if fade_a >= fade_b {
            (Antenna::A, fade_a)
        } else {
            (Antenna::B, fade_b)
        }
    }

    /// The fade a *single*-antenna receiver would see, for diversity-ablation
    /// benchmarks.
    pub fn single_branch<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gaussian(rng, self.branch_sigma_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_antennas_get_used() {
        let mut rng = StdRng::seed_from_u64(1);
        let rx = DiversityReceiver::default();
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            let (ant, _) = rx.select(&mut rng);
            counts[usize::from(ant.id())] += 1;
        }
        // Symmetric branches → roughly 50/50.
        assert!((4500..5500).contains(&counts[0]), "{counts:?}");
    }

    #[test]
    fn selection_improves_mean_fade() {
        let mut rng = StdRng::seed_from_u64(2);
        let rx = DiversityReceiver::default();
        let n = 50_000;
        let div: f64 = (0..n).map(|_| rx.select(&mut rng).1).sum::<f64>() / f64::from(n);
        let single: f64 = (0..n).map(|_| rx.single_branch(&mut rng)).sum::<f64>() / f64::from(n);
        // E[max of two N(0,σ)] = σ/√π ≈ 0.564σ.
        assert!(div > single + 1.0, "diversity {div} vs single {single}");
        assert!((div - rx.branch_sigma_db * 0.564).abs() < 0.05, "{div}");
    }

    #[test]
    fn selection_thins_deep_fade_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let rx = DiversityReceiver::default();
        let n = 100_000;
        let threshold = -2.0 * rx.branch_sigma_db; // a 2σ fade
        let deep_div = (0..n).filter(|_| rx.select(&mut rng).1 < threshold).count();
        let deep_single = (0..n)
            .filter(|_| rx.single_branch(&mut rng) < threshold)
            .count();
        // P(both branches < -2σ) = P(one < -2σ)² — orders of magnitude rarer.
        assert!(deep_div * 10 < deep_single, "{deep_div} vs {deep_single}");
    }

    #[test]
    fn antenna_ids() {
        assert_eq!(Antenna::A.id(), 0);
        assert_eq!(Antenna::B.id(), 1);
    }
}
