#![warn(missing_docs)]

//! # wavelan-phy
//!
//! Physical-layer model of the AT&T WaveLAN 900 MHz radio, built for the
//! reproduction of the SIGCOMM '96 error-characteristics study.
//!
//! The real device (paper Section 2) applies DQPSK modulation to a 2 Mb/s data
//! stream, producing a 1 megabaud symbol stream, spreads each symbol with an
//! 11-chip direct sequence, transmits at 500 mW in the 902–928 MHz ISM band,
//! and receives through a dual-antenna diversity front end with an AGC that
//! reports *signal level*, *silence level* and *signal quality* for every
//! packet. This crate models each of those pieces:
//!
//! * [`math`] — erfc/Q-function and dB↔linear helpers (no external deps),
//! * [`baseband`] — a tiny complex-baseband simulation used by the slow-path
//!   chip-level modem and its tests,
//! * [`modulation`] — DQPSK symbol mapping plus closed-form error rates,
//! * [`spreading`] — 11-chip Barker spreading, correlation despreading, and
//!   processing-gain arithmetic,
//! * [`pathloss`] — free-space and log-distance propagation,
//! * [`materials`] — per-material wall attenuation (plaster+mesh, concrete,
//!   human body, ...; calibrated to the paper's Tables 4, 8–9),
//! * [`fading`] — two-ray multipath ripple and lognormal shadowing,
//! * [`agc`] — received-power → signal/silence level mapping and AGC
//!   preamble-capture behaviour,
//! * [`quality`] — the 4-bit diversity-correlator quality metric,
//! * [`antenna`] — dual-antenna selection diversity,
//! * [`gilbert`] — the Gilbert–Elliott two-state burst channel (generator
//!   and parameter fitting), for FEC studies over bursty errors,
//! * [`interference`] — narrowband FM, in-band spread-spectrum, out-of-band
//!   (front-end overload) and competing-WaveLAN interference sources,
//! * [`link`] — the per-packet reception pipeline tying it all together:
//!   given a desired-signal power and an interference timeline, produce the
//!   packet outcome (lost / truncated / bit errors) and the reported signal
//!   metrics.
//!
//! ## Fast path vs slow path
//!
//! Packet-level experiments (millions of packets, 10^10 body bits for the
//! paper's Table 2) use *closed-form* error rates driven by per-segment SINR —
//! see [`link`]. The *chip-level* modem in [`baseband`]/[`modulation`]/
//! [`spreading`] exists so the closed forms can be validated against an actual
//! waveform simulation (see `tests/modem_validation.rs`) and so the
//! processing-gain claims are demonstrated rather than asserted.
//!
//! ## Reception hot path: `RxScratch` and `ChannelCache`
//!
//! [`link::LinkModel::receive_with`] is the allocation-free variant of the
//! pipeline. It threads a [`scratch::RxScratch`] workspace through reception
//! so that steady-state packet processing performs **zero heap allocations**
//! and memoizes the expensive transcendental conversions (`powf`, `log10`,
//! `erfc`) in a [`scratch::ChannelCache`]. The caches store *exact* `f64`
//! results keyed by input bit pattern, so the hot path is bit-identical to
//! the plain [`link::LinkModel::receive`] reference — same RNG draw
//! sequence, same outcomes (property-tested in `tests/props.rs`).
//!
//! Ownership rules:
//!
//! * One `RxScratch` per worker thread (or per [`sim` runner]); it is `Send`
//!   but not shared — never hand one scratch to two concurrent receivers.
//! * Reusing a scratch across packets, trials, and seeds is always safe: it
//!   carries no trial-observable state (caches are exact-value memos and the
//!   segment timeline is re-validated against the emission set per packet).
//! * Consumers of a [`link::Reception`] should return the `error_bits`
//!   buffer via [`scratch::RxScratch::recycle_error_buf`] once done, e.g.
//!   `scratch.recycle_error_buf(std::mem::take(&mut reception.error_bits))`;
//!   skipping this is correct but reintroduces one allocation per errored
//!   packet.
//!
//! [`sim` runner]: link::LinkModel::receive_with

pub mod agc;
pub mod antenna;
pub mod baseband;
pub mod fading;
pub mod gilbert;
pub mod interference;
pub mod link;
pub mod materials;
pub mod math;
pub mod modulation;
pub mod pathloss;
pub mod quality;
pub mod scratch;
pub mod spreading;

pub use agc::{AgcModel, SignalLevel};
pub use interference::{InterferenceKind, Interferer};
pub use link::{LinkModel, PacketOutcome, RxMetrics};
pub use materials::Material;
pub use scratch::{ChannelCache, RxScratch};

/// Data rate of the WaveLAN air interface, bits per second.
pub const DATA_RATE_BPS: u64 = 2_000_000;

/// Symbol rate: DQPSK carries 2 bits/symbol, so 2 Mb/s → 1 Mbaud.
pub const SYMBOL_RATE_BAUD: u64 = 1_000_000;

/// Spreading factor: 11 chips per symbol ("an 11 chip per bit sequence" in the
/// paper's loose wording; the signal is 11 MHz wide at 1 Mbaud).
pub const CHIPS_PER_SYMBOL: usize = 11;

/// Transmit power: 500 mW ≈ +27 dBm.
pub const TX_POWER_DBM: f64 = 26.99;

/// Carrier frequency of the 900 MHz product, Hz.
pub const CARRIER_HZ: f64 = 915.0e6;
