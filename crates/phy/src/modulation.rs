//! DQPSK modulation: differential encoding, symbol mapping, demodulation, and
//! closed-form bit error rates.
//!
//! "The transmitter applies DQPSK modulation to a 2 megabit/s data stream,
//! yielding a 1 megabaud signal" (paper Section 2). Differential QPSK carries
//! each dibit in the *phase change* between consecutive symbols, so the
//! receiver needs no absolute carrier phase reference — the right choice for
//! an indoor multipath channel where the phase wanders.
//!
//! Two representations coexist here:
//!
//! * a working symbol-level codec ([`DqpskModulator`] / [`DqpskDemodulator`])
//!   used by the chip-level validation path, and
//! * closed-form BER functions used by the packet-level fast path
//!   ([`dqpsk_ber`], with [`qpsk_ber`]/[`dbpsk_ber`] for comparison benches).

use crate::baseband::Complex;
use crate::math::q;
use std::f64::consts::FRAC_PI_2;

/// Gray mapping from a dibit to a phase increment, in multiples of π/2:
/// `00→0, 01→+π/2, 11→+π, 10→+3π/2`.
///
/// Gray coding makes the most likely symbol error (adjacent phase) cost one
/// bit, which the closed-form BER assumes.
fn dibit_to_quadrant(dibit: u8) -> u8 {
    match dibit & 0b11 {
        0b00 => 0,
        0b01 => 1,
        0b11 => 2,
        0b10 => 3,
        _ => unreachable!(),
    }
}

/// Inverse of [`dibit_to_quadrant`].
fn quadrant_to_dibit(quadrant: u8) -> u8 {
    match quadrant & 0b11 {
        0 => 0b00,
        1 => 0b01,
        2 => 0b11,
        3 => 0b10,
        _ => unreachable!(),
    }
}

/// Differential QPSK modulator. Stateful: remembers the previous symbol phase.
#[derive(Debug, Clone)]
pub struct DqpskModulator {
    /// Current absolute phase, in quadrants (0..4).
    phase_quadrants: u8,
}

impl DqpskModulator {
    /// Starts with the reference phase at 0.
    pub fn new() -> DqpskModulator {
        DqpskModulator { phase_quadrants: 0 }
    }

    /// Modulates one dibit (two bits, `b1b0` in the low bits) into the next
    /// unit-energy symbol.
    pub fn modulate_dibit(&mut self, dibit: u8) -> Complex {
        self.phase_quadrants = (self.phase_quadrants + dibit_to_quadrant(dibit)) & 0b11;
        Complex::from_phase(f64::from(self.phase_quadrants) * FRAC_PI_2)
    }

    /// Modulates a byte slice, MSB-first within each byte, two bits per
    /// symbol. Returns `4 × len` symbols.
    pub fn modulate_bytes(&mut self, bytes: &[u8]) -> Vec<Complex> {
        let mut out = Vec::with_capacity(bytes.len() * 4);
        for &b in bytes {
            for shift in [6u8, 4, 2, 0] {
                out.push(self.modulate_dibit((b >> shift) & 0b11));
            }
        }
        out
    }
}

impl Default for DqpskModulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Differential QPSK demodulator: recovers dibits from phase *differences*
/// between consecutive symbols, so it needs the previous (possibly noisy)
/// symbol only.
#[derive(Debug, Clone)]
pub struct DqpskDemodulator {
    prev: Complex,
}

impl DqpskDemodulator {
    /// Starts with the reference phase at 0 (matching [`DqpskModulator`]).
    pub fn new() -> DqpskDemodulator {
        DqpskDemodulator {
            prev: Complex::new(1.0, 0.0),
        }
    }

    /// Demodulates one received symbol into a dibit by rotating the
    /// differential product into the nearest quadrant.
    pub fn demodulate_symbol(&mut self, symbol: Complex) -> u8 {
        let diff = symbol * self.prev.conj();
        self.prev = symbol;
        // Decision: which multiple of π/2 is closest to arg(diff)?
        let quadrant = (diff.arg() / FRAC_PI_2).round().rem_euclid(4.0) as u8 & 0b11;
        quadrant_to_dibit(quadrant)
    }

    /// Demodulates a symbol stream back into bytes (4 symbols per byte,
    /// MSB-first). Trailing symbols that don't fill a byte are dropped.
    pub fn demodulate_bytes(&mut self, symbols: &[Complex]) -> Vec<u8> {
        let mut out = Vec::with_capacity(symbols.len() / 4);
        for chunk in symbols.chunks_exact(4) {
            let mut byte = 0u8;
            for &s in chunk {
                byte = (byte << 2) | self.demodulate_symbol(s);
            }
            out.push(byte);
        }
        out
    }
}

impl Default for DqpskDemodulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Closed-form BER for coherent, Gray-coded QPSK: `Pb = Q(√(2·Eb/N0))`.
pub fn qpsk_ber(ebn0_linear: f64) -> f64 {
    q((2.0 * ebn0_linear).sqrt())
}

/// Closed-form BER for differentially-detected BPSK: `Pb = e^(−Eb/N0) / 2`.
pub fn dbpsk_ber(ebn0_linear: f64) -> f64 {
    0.5 * (-ebn0_linear).exp()
}

/// Approximate BER for Gray-coded, differentially-detected DQPSK.
///
/// Exact DQPSK BER needs the Marcum Q function; the standard engineering
/// approximation charges differential detection of QPSK a ≈2.3 dB penalty
/// relative to coherent QPSK:
///
/// `Pb ≈ Q(√(2·Eb/N0 / 10^(2.3/10))) = Q(√(1.1754·Eb/N0))`
///
/// Accuracy is a fraction of a dB across the 10⁻² … 10⁻⁸ range we care about,
/// well inside the calibration slack of the reproduction. Validated against
/// the symbol-level simulation in `tests/modem_validation.rs`.
pub fn dqpsk_ber(ebn0_linear: f64) -> f64 {
    const PENALTY_DB: f64 = 2.3;
    let derate = 10f64.powf(-PENALTY_DB / 10.0);
    q((2.0 * ebn0_linear * derate).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseband::add_awgn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gray_map_round_trip() {
        for dibit in 0..4u8 {
            assert_eq!(quadrant_to_dibit(dibit_to_quadrant(dibit)), dibit);
        }
    }

    #[test]
    fn modulate_demodulate_identity() {
        let data: Vec<u8> = (0..=255).collect();
        let mut m = DqpskModulator::new();
        let mut d = DqpskDemodulator::new();
        let symbols = m.modulate_bytes(&data);
        assert_eq!(symbols.len(), data.len() * 4);
        assert_eq!(d.demodulate_bytes(&symbols), data);
    }

    #[test]
    fn constant_phase_rotation_is_transparent() {
        // Differential detection must not care about an absolute phase offset —
        // the whole point of the D in DQPSK.
        let data = vec![0xC3u8, 0x5A, 0xFF, 0x00, 0x17];
        let mut m = DqpskModulator::new();
        let rot = Complex::from_phase(0.9);
        let symbols: Vec<Complex> = m
            .modulate_bytes(&data)
            .into_iter()
            .map(|s| s * rot)
            .collect();
        let mut d = DqpskDemodulator::new();
        // The first symbol's differential reference is the unrotated origin, so
        // skip byte 0 and check the rest (a real receiver gets a preamble).
        let got = d.demodulate_bytes(&symbols);
        assert_eq!(&got[1..], &data[1..]);
    }

    #[test]
    fn survives_mild_noise() {
        let data = vec![0x55u8; 512];
        let mut rng = StdRng::seed_from_u64(42);
        let mut m = DqpskModulator::new();
        let mut symbols = m.modulate_bytes(&data);
        // Es/N0 = 16 dB → essentially error-free for this length.
        add_awgn(
            &mut rng,
            &mut symbols,
            1.0 / crate::math::db_to_linear(16.0),
        );
        let mut d = DqpskDemodulator::new();
        assert_eq!(d.demodulate_bytes(&symbols), data);
    }

    #[test]
    fn ber_functions_are_monotone_and_ordered() {
        let mut prev_dq = 1.0;
        for snr_db in [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0] {
            let g = crate::math::db_to_linear(snr_db);
            let dq = dqpsk_ber(g);
            assert!(dq < prev_dq, "dqpsk_ber not decreasing at {snr_db} dB");
            // Coherent QPSK always beats DQPSK; DQPSK beats nothing at 0 dB but
            // must be within the (0, 0.5] probability range.
            assert!(qpsk_ber(g) < dq);
            assert!(dq > 0.0 && dq <= 0.5);
            prev_dq = dq;
        }
    }

    #[test]
    fn dqpsk_penalty_is_about_2_3_db() {
        // Find Eb/N0 where each modem hits BER 1e-5; the gap should be ≈2.3 dB.
        let target = 1e-5;
        let solve = |f: &dyn Fn(f64) -> f64| {
            let mut lo = 0.0;
            let mut hi = 30.0;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if f(crate::math::db_to_linear(mid)) > target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        let qpsk_db = solve(&qpsk_ber);
        let dqpsk_db = solve(&dqpsk_ber);
        assert!(
            (dqpsk_db - qpsk_db - 2.3).abs() < 0.05,
            "gap {}",
            dqpsk_db - qpsk_db
        );
    }
}
