//! Direct-sequence spreading: the 11-chip Barker code, correlation
//! despreading, and processing-gain arithmetic.
//!
//! WaveLAN multiplies each 1 Mbaud symbol by an 11-chip sequence, producing an
//! 11 MHz-wide signal (paper Section 2). The receiver correlates against the
//! same sequence; in-band *narrowband* interference decorrelates and is
//! suppressed by the processing gain (10·log₁₀ 11 ≈ 10.4 dB plus the
//! despreader's excision of a narrow line), which is exactly why the paper's
//! cordless-FM-phone experiments (Table 10) show raised silence levels but
//! zero damaged packets, while the in-band *spread-spectrum* phone — whose
//! energy looks like wideband noise to the correlator — causes severe damage
//! (Table 11).
//!
//! The paper also discusses (Section 8) extending WaveLAN with *multiple*
//! spreading sequences for cell isolation; [`cross_correlation`] and
//! [`SpreadingCode::family`] support that extension study in `wavelan-cell`.

use crate::baseband::Complex;

/// The length-11 Barker sequence, the classic DSSS chip code with ±1 sidelobes.
pub const BARKER_11: [i8; 11] = [1, 1, 1, -1, -1, -1, 1, -1, -1, 1, -1];

/// Processing gain of an `n`-chip spreading code against wideband interference,
/// in dB: `10·log₁₀ n`.
pub fn processing_gain_db(chips: usize) -> f64 {
    10.0 * (chips as f64).log10()
}

/// A binary (±1) spreading code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpreadingCode {
    chips: Vec<i8>,
}

impl SpreadingCode {
    /// The WaveLAN code: Barker-11.
    pub fn barker11() -> SpreadingCode {
        SpreadingCode {
            chips: BARKER_11.to_vec(),
        }
    }

    /// Builds a code from explicit chips; values must be ±1.
    pub fn new(chips: Vec<i8>) -> SpreadingCode {
        assert!(
            chips.iter().all(|&c| c == 1 || c == -1),
            "spreading chips must be ±1"
        );
        SpreadingCode { chips }
    }

    /// Generates a family of `count` pseudo-random ±1 codes of length `len`,
    /// seeded deterministically. Used by the CDMA extension experiments: the
    /// paper notes "it is difficult to construct large sequence families which
    /// simultaneously have low self-correlation and low cross-correlation".
    /// A simple LFSR-style generator is intentionally *not* optimized for low
    /// cross-correlation — the extension experiment measures the penalty.
    pub fn family(count: usize, len: usize, seed: u64) -> Vec<SpreadingCode> {
        let mut state = seed | 1;
        let mut next_bit = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63) & 1
        };
        (0..count)
            .map(|_| {
                let chips = (0..len)
                    .map(|_| if next_bit() == 1 { 1 } else { -1 })
                    .collect();
                SpreadingCode { chips }
            })
            .collect()
    }

    /// Number of chips per symbol.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// True if the code is empty (never the case for built-in codes).
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Chip values.
    pub fn chips(&self) -> &[i8] {
        &self.chips
    }

    /// Spreads one symbol into `len()` chips.
    pub fn spread_symbol(&self, symbol: Complex) -> Vec<Complex> {
        self.chips
            .iter()
            .map(|&c| symbol.scale(f64::from(c)))
            .collect()
    }

    /// Spreads a symbol stream.
    pub fn spread(&self, symbols: &[Complex]) -> Vec<Complex> {
        let mut out = Vec::with_capacity(symbols.len() * self.len());
        for &s in symbols {
            for &c in &self.chips {
                out.push(s.scale(f64::from(c)));
            }
        }
        out
    }

    /// Despreads by correlating each `len()`-chip window against the code and
    /// normalizing, recovering one symbol per window. The correlation averages
    /// noise across chips — this is where the processing gain comes from.
    pub fn despread(&self, chips: &[Complex]) -> Vec<Complex> {
        let n = self.len();
        let mut out = Vec::with_capacity(chips.len() / n);
        for window in chips.chunks_exact(n) {
            let mut acc = Complex::default();
            for (&rx, &c) in window.iter().zip(&self.chips) {
                acc = acc + rx.scale(f64::from(c));
            }
            out.push(acc.scale(1.0 / n as f64));
        }
        out
    }

    /// Normalized periodic autocorrelation at a chip lag (1.0 at lag 0).
    pub fn autocorrelation(&self, lag: usize) -> f64 {
        let n = self.len();
        let sum: i32 = (0..n)
            .map(|i| i32::from(self.chips[i]) * i32::from(self.chips[(i + lag) % n]))
            .sum();
        f64::from(sum) / n as f64
    }
}

/// Normalized cross-correlation of two equal-length codes at lag 0.
///
/// For ideal CDMA this would be 0; real finite families leak — the `cell`
/// crate quantifies the resulting error floor.
pub fn cross_correlation(a: &SpreadingCode, b: &SpreadingCode) -> f64 {
    assert_eq!(a.len(), b.len(), "codes must have equal length");
    let sum: i32 = a
        .chips
        .iter()
        .zip(&b.chips)
        .map(|(&x, &y)| i32::from(x) * i32::from(y))
        .sum();
    f64::from(sum) / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseband::{add_awgn, gaussian};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn barker_autocorrelation_sidelobes() {
        // Barker codes have periodic autocorrelation sidelobes of magnitude
        // ≤ 1/11 — the property that makes them multipath-resistant.
        let code = SpreadingCode::barker11();
        assert!((code.autocorrelation(0) - 1.0).abs() < 1e-12);
        for lag in 1..11 {
            assert!(
                code.autocorrelation(lag).abs() <= 1.0 / 11.0 + 1e-12,
                "lag {lag}: {}",
                code.autocorrelation(lag)
            );
        }
    }

    #[test]
    fn spread_despread_identity() {
        let code = SpreadingCode::barker11();
        let symbols: Vec<Complex> = (0..64)
            .map(|i| Complex::from_phase(f64::from(i) * 0.37))
            .collect();
        let chips = code.spread(&symbols);
        assert_eq!(chips.len(), symbols.len() * 11);
        let back = code.despread(&chips);
        for (a, b) in symbols.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn processing_gain_value() {
        assert!((processing_gain_db(11) - 10.4139).abs() < 1e-3);
    }

    #[test]
    fn despreading_averages_noise() {
        // SNR after despreading should improve by ≈ the processing gain.
        let mut rng = StdRng::seed_from_u64(3);
        let code = SpreadingCode::barker11();
        let symbols = vec![Complex::new(1.0, 0.0); 20_000];
        let mut chips = code.spread(&symbols);
        let n0 = 1.0; // chip-level SNR = 0 dB
        add_awgn(&mut rng, &mut chips, n0);
        let out = code.despread(&chips);
        // Signal power stays 1; noise power should fall to n0/11.
        let noise_power: f64 = out
            .iter()
            .map(|s| (*s - Complex::new(1.0, 0.0)).norm_sq())
            .sum::<f64>()
            / out.len() as f64;
        let gain_db = crate::math::linear_to_db(n0 / noise_power);
        assert!(
            (gain_db - processing_gain_db(11)).abs() < 0.5,
            "measured gain {gain_db} dB"
        );
    }

    #[test]
    fn narrowband_tone_is_suppressed() {
        // A constant-envelope tone at a non-zero frequency offset decorrelates
        // against the Barker code: after despreading its residual power drops.
        let code = SpreadingCode::barker11();
        let symbols = vec![Complex::new(1.0, 0.0); 5_000];
        let mut chips = code.spread(&symbols);
        // Tone at 0.23 cycles/chip, equal power to the signal.
        for (i, c) in chips.iter_mut().enumerate() {
            *c = *c + Complex::from_phase(2.0 * std::f64::consts::PI * 0.23 * i as f64);
        }
        let out = code.despread(&chips);
        let residual: f64 = out
            .iter()
            .map(|s| (*s - Complex::new(1.0, 0.0)).norm_sq())
            .sum::<f64>()
            / out.len() as f64;
        // 0 dB tone should leave well under -9 dB residual after an 11-chip
        // correlation (exact value depends on the tone frequency).
        assert!(residual < 0.125, "residual {residual}");
    }

    #[test]
    fn code_family_properties() {
        let family = SpreadingCode::family(8, 11, 0xFEED);
        assert_eq!(family.len(), 8);
        for code in &family {
            assert_eq!(code.len(), 11);
        }
        // Deterministic for a given seed.
        let again = SpreadingCode::family(8, 11, 0xFEED);
        assert_eq!(family, again);
        // Different seed, different family.
        assert_ne!(family, SpreadingCode::family(8, 11, 0xBEEF));
    }

    #[test]
    fn cross_correlation_bounds() {
        let family = SpreadingCode::family(6, 11, 1);
        for i in 0..family.len() {
            for j in 0..family.len() {
                let xc = cross_correlation(&family[i], &family[j]);
                assert!((-1.0..=1.0).contains(&xc));
                if i == j {
                    assert!((xc - 1.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn despread_with_wrong_code_leaves_noiselike_output() {
        // CDMA premise: a signal spread with code A despread with code B is
        // attenuated by roughly the cross-correlation.
        let mut rng = StdRng::seed_from_u64(9);
        let family = SpreadingCode::family(2, 33, 77);
        let (a, b) = (&family[0], &family[1]);
        let symbols: Vec<Complex> = (0..1000)
            .map(|_| Complex::from_phase(rng.gen::<f64>() * std::f64::consts::TAU))
            .collect();
        let chips = a.spread(&symbols);
        let leaked = b.despread(&chips);
        let leak_power: f64 = leaked.iter().map(|s| s.norm_sq()).sum::<f64>() / leaked.len() as f64;
        let xc = cross_correlation(a, b);
        assert!(
            (leak_power - xc * xc).abs() < 0.05,
            "leak {leak_power}, xc² {}",
            xc * xc
        );
        let _ = gaussian(&mut rng, 1.0); // keep rng used symmetrically
    }
}
