//! Property-based tests for the framing substrate.

use proptest::prelude::*;
use wavelan_net::checksum::{internet_checksum, verify, Checksum};
use wavelan_net::crc32::crc32;
use wavelan_net::ethernet::{EtherType, EthernetFrame, MIN_PAYLOAD};
use wavelan_net::ipv4::Ipv4Header;
use wavelan_net::testpkt::{Endpoint, TestPacket};
use wavelan_net::udp::UdpHeader;
use wavelan_net::MacAddr;

proptest! {
    /// CRC-32 detects every single-bit error, at any position and length.
    #[test]
    fn crc_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        pos in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let base = crc32(&data);
        let mut flipped = data.clone();
        let idx = pos.index(data.len());
        flipped[idx] ^= 1 << bit;
        prop_assert_ne!(crc32(&flipped), base);
    }

    /// CRC-32 incremental updates are split-invariant.
    #[test]
    fn crc_split_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cut in any::<proptest::sample::Index>(),
    ) {
        let cut = if data.is_empty() { 0 } else { cut.index(data.len() + 1) };
        let mut c = wavelan_net::crc32::Crc32::new();
        c.update(&data[..cut]);
        c.update(&data[cut..]);
        prop_assert_eq!(c.finish(), crc32(&data));
    }

    /// The internet checksum verifies after being stored, for any payload.
    #[test]
    fn checksum_store_then_verify(mut data in proptest::collection::vec(any::<u8>(), 12..256)) {
        // zero the checksum slot, compute, store, verify
        data[10] = 0;
        data[11] = 0;
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        prop_assert!(verify(&data));
    }

    /// Checksum is split-invariant across arbitrary (possibly odd) boundaries.
    #[test]
    fn checksum_split_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..4),
    ) {
        let mut idxs: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
        idxs.sort_unstable();
        let mut c = Checksum::new();
        let mut start = 0;
        for &i in &idxs {
            c.update(&data[start..i]);
            start = i;
        }
        c.update(&data[start..]);
        prop_assert_eq!(c.finish(), internet_checksum(&data));
    }

    /// Ethernet build→parse is the identity on (dst, src, ethertype, payload),
    /// modulo minimum-length padding, and the FCS verifies.
    #[test]
    fn ethernet_round_trip(
        dst in any::<[u8; 6]>(),
        src in any::<[u8; 6]>(),
        et in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        let dst = MacAddr(dst);
        let src = MacAddr(src);
        let wire = EthernetFrame::build(dst, src, EtherType::from_u16(et), &payload);
        let f = EthernetFrame::parse(&wire).unwrap();
        prop_assert!(f.fcs_ok);
        prop_assert_eq!(f.dst, dst);
        prop_assert_eq!(f.src, src);
        prop_assert_eq!(f.ethertype.to_u16(), et);
        prop_assert_eq!(&f.payload[..payload.len()], &payload[..]);
        prop_assert_eq!(f.payload.len(), payload.len().max(MIN_PAYLOAD));
    }

    /// Any single-bit corruption of an Ethernet frame body is caught by the FCS.
    #[test]
    fn ethernet_fcs_catches_bit_flip(
        payload in proptest::collection::vec(any::<u8>(), 46..200),
        pos in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let wire = EthernetFrame::build(
            MacAddr::station(1), MacAddr::station(2), EtherType::Ipv4, &payload);
        let mut damaged = wire.clone();
        let idx = pos.index(wire.len());
        damaged[idx] ^= 1 << bit;
        let f = EthernetFrame::parse(&damaged).unwrap();
        prop_assert!(!f.fcs_ok);
    }

    /// UDP-in-IPv4 build→parse round-trips and both checksums verify.
    #[test]
    fn udp_ip_round_trip(
        sport in any::<u16>(),
        dport in any::<u16>(),
        ident in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let udp = UdpHeader::new(sport, dport, payload.len());
        let ip = Ipv4Header::udp(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            ident,
            usize::from(udp.length),
        );
        let udp_bytes = udp.build(&ip, &payload);
        let wire = ip.build(&udp_bytes);

        let (pip, off) = Ipv4Header::parse(&wire).unwrap();
        prop_assert!(pip.checksum_ok);
        prop_assert_eq!(pip.ident, ident);
        let (pudp, poff) = UdpHeader::parse(&wire[off..], &pip).unwrap();
        prop_assert!(pudp.checksum_ok);
        prop_assert_eq!(pudp.src_port, sport);
        prop_assert_eq!(pudp.dst_port, dport);
        prop_assert_eq!(&wire[off + poff..], &payload[..]);
    }

    /// Every test packet's frame parses cleanly and its body majority word is
    /// exactly the sequence number.
    #[test]
    fn test_packet_identity(seq in any::<u32>()) {
        let p = TestPacket { seq };
        let wire = p.build_frame(Endpoint::station(1), Endpoint::station(2));
        let f = EthernetFrame::parse(&wire).unwrap();
        prop_assert!(f.fcs_ok);
        let body = &wire[TestPacket::body_offset()..wire.len() - 4];
        for chunk in body.chunks_exact(4) {
            prop_assert_eq!(u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]), seq);
        }
    }
}
