//! IEEE 802.3 CRC-32, as computed by the Ethernet frame check sequence (FCS).
//!
//! The WaveLAN's 82593 controller performs "CRC generation and checking"
//! (paper Section 2); the study *disables automatic CRC filtering* at the
//! receiver so damaged frames can be logged. We therefore need the real
//! algorithm both to generate trailers on transmit and to re-verify them
//! during analysis.
//!
//! This is the standard reflected CRC-32 with polynomial `0x04C11DB7`
//! (reflected form `0xEDB88320`), initial value `0xFFFF_FFFF`, final XOR
//! `0xFFFF_FFFF` — the same parameterization used by Ethernet, zip and zlib,
//! so it can be validated against the well-known `"123456789"` check value
//! `0xCBF43926`.

/// Reflected polynomial for IEEE CRC-32.
const POLY: u32 = 0xEDB8_8320;

/// Slice-by-8 lookup tables, built at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k][b]` is the CRC contribution of
/// byte `b` seen `k` bytes before the end of an 8-byte block, so one loop
/// iteration folds 8 input bytes with 8 independent table loads instead of
/// 8 serially-dependent single-byte steps.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Incremental CRC-32 state.
///
/// Use this when a frame is assembled from several slices (header, payload,
/// padding) and the FCS must cover all of them without an intermediate copy.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh computation.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the running CRC (slice-by-8; bit-identical to the
    /// byte-at-a-time recurrence it replaces).
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][c[4] as usize]
                ^ TABLES[2][c[5] as usize]
                ^ TABLES[1][c[6] as usize]
                ^ TABLES[0][c[7] as usize];
        }
        for &byte in chunks.remainder() {
            let idx = ((crc ^ byte as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLES[0][idx];
        }
        self.state = crc;
    }

    /// Finishes and returns the CRC value (host order; transmit little-endian
    /// per 802.3 bit ordering — see [`crate::ethernet`]).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_standard() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..17]);
        c.update(&data[17..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn known_vector_all_zero() {
        // 32 zero bytes; value cross-checked against zlib's crc32().
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }
}
