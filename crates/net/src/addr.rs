//! Ethernet (MAC) addresses.
//!
//! WaveLAN carries standard Ethernet addressing: the Intel 82593 controller
//! "performs all standard Ethernet functions, including ... address recognition
//! and filtering" (paper Section 2). The study's receivers run promiscuous, so
//! the analysis side also needs to reason about *corrupted* addresses — e.g.
//! Section 7.4 observes "hundreds of invalid Ethernet addresses ... indicating
//! that the Ethernet station address field was frequently corrupted".

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address (never a valid station address).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds a locally-administered unicast address from a small station id,
    /// mirroring the `02-00-00-00-00-xx` convention used by test harnesses.
    pub fn station(id: u16) -> MacAddr {
        let [hi, lo] = id.to_be_bytes();
        MacAddr([0x02, 0x00, 0x00, 0x00, hi, lo])
    }

    /// True if the group (multicast) bit of the first octet is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the locally-administered bit is set.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Bytes in transmission order.
    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }

    /// Hamming distance in bits to another address. The heuristic matcher in
    /// `wavelan-analysis` uses this to recognize a known station address that
    /// arrived with a few corrupted bits.
    pub fn bit_distance(&self, other: &MacAddr) -> u32 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }
}

impl core::fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Display::fmt(self, f)
    }
}

impl core::fmt::Display for MacAddr {
    /// Writes the canonical colon-separated hex form, e.g. `02:00:00:00:00:01`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(b: [u8; 6]) -> Self {
        MacAddr(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn station_addresses_are_local_unicast() {
        let a = MacAddr::station(7);
        assert!(a.is_local());
        assert!(!a.is_multicast());
        assert!(!a.is_broadcast());
        assert_eq!(a.0[5], 7);
    }

    #[test]
    fn broadcast_is_multicast() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn display_formats_colon_hex() {
        let a = MacAddr([0x02, 0x00, 0xab, 0xcd, 0x00, 0x01]);
        assert_eq!(a.to_string(), "02:00:ab:cd:00:01");
    }

    #[test]
    fn bit_distance_counts_flipped_bits() {
        let a = MacAddr::station(1);
        let mut b = a;
        b.0[0] ^= 0b101;
        b.0[5] ^= 0b1;
        assert_eq!(a.bit_distance(&b), 3);
        assert_eq!(a.bit_distance(&a), 0);
    }

    #[test]
    fn distinct_station_ids_differ() {
        assert_ne!(MacAddr::station(1), MacAddr::station(2));
    }
}
