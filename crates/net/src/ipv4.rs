//! IPv4 header construction and parsing.
//!
//! The test traffic in the paper is UDP-over-IPv4-over-Ethernet. We implement
//! the 20-byte option-less header (the testbed never emits options; the parser
//! tolerates but skips them), including the internet checksum, so that header
//! corruption manifests exactly as in the study: "errors in the packet headers
//! ... might lead the Ethernet or IP layers to discard the packet" (Section 4).

use crate::checksum::{internet_checksum, Checksum};
use crate::ParseError;
use bytes::{BufMut, BytesMut};
use std::net::Ipv4Addr;

/// Length of an option-less IPv4 header.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// A parsed (or to-be-built) IPv4 header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol (17 = UDP).
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (we use the test sequence number's low 16 bits).
    pub ident: u16,
    /// Total length: header plus payload, in bytes.
    pub total_len: u16,
    /// Whether the header checksum verified on parse (always true for built headers).
    pub checksum_ok: bool,
}

impl Ipv4Header {
    /// Creates a UDP header template with conventional defaults.
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, ident: u16, payload_len: usize) -> Ipv4Header {
        Ipv4Header {
            src,
            dst,
            protocol: PROTO_UDP,
            ttl: 64,
            ident,
            total_len: (IPV4_HEADER_LEN + payload_len) as u16,
            checksum_ok: true,
        }
    }

    /// Serializes the header (20 bytes) with a correct checksum and appends
    /// `payload` after it.
    pub fn build(&self, payload: &[u8]) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(IPV4_HEADER_LEN + payload.len());
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(self.total_len);
        buf.put_u16(self.ident);
        buf.put_u16(0x4000); // flags: don't-fragment, offset 0
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        let ck = internet_checksum(&buf[..IPV4_HEADER_LEN]);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        buf.put_slice(payload);
        buf.to_vec()
    }

    /// Parses the header from the front of `bytes`; returns the header and the
    /// offset at which the payload begins. A checksum mismatch is reported in
    /// [`Ipv4Header::checksum_ok`] rather than as an error, mirroring the
    /// study's promiscuous, filter-everything-off receiver.
    pub fn parse(bytes: &[u8]) -> Result<(Ipv4Header, usize), ParseError> {
        if bytes.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: IPV4_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let version = bytes[0] >> 4;
        if version != 4 {
            return Err(ParseError::BadField { field: "version" });
        }
        let ihl = usize::from(bytes[0] & 0x0F) * 4;
        if !(IPV4_HEADER_LEN..=60).contains(&ihl) || bytes.len() < ihl {
            return Err(ParseError::BadField { field: "ihl" });
        }
        let total_len = u16::from_be_bytes([bytes[2], bytes[3]]);
        let ident = u16::from_be_bytes([bytes[4], bytes[5]]);
        let ttl = bytes[8];
        let protocol = bytes[9];
        let src = Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]);
        let dst = Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]);
        let checksum_ok = internet_checksum(&bytes[..ihl]) == 0;
        Ok((
            Ipv4Header {
                src,
                dst,
                protocol,
                ttl,
                ident,
                total_len,
                checksum_ok,
            },
            ihl,
        ))
    }

    /// Computes the UDP/TCP pseudo-header checksum contribution for this
    /// header and a payload of `len` bytes.
    pub fn pseudo_header_checksum(&self, len: u16) -> Checksum {
        let mut c = Checksum::new();
        c.update(&self.src.octets());
        c.update(&self.dst.octets());
        c.update_u16(u16::from(self.protocol));
        c.update_u16(len);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv4Header {
        Ipv4Header::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            42,
            100,
        )
    }

    #[test]
    fn build_parse_round_trip() {
        let payload = vec![0xAAu8; 100];
        let wire = hdr().build(&payload);
        let (parsed, off) = Ipv4Header::parse(&wire).unwrap();
        assert_eq!(off, IPV4_HEADER_LEN);
        assert_eq!(parsed.src, hdr().src);
        assert_eq!(parsed.dst, hdr().dst);
        assert_eq!(parsed.ident, 42);
        assert_eq!(parsed.protocol, PROTO_UDP);
        assert!(parsed.checksum_ok);
        assert_eq!(&wire[off..], &payload[..]);
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let wire = hdr().build(&[]);
        let mut damaged = wire.clone();
        damaged[8] ^= 0x10; // TTL bit flip
        let (parsed, _) = Ipv4Header::parse(&damaged).unwrap();
        assert!(!parsed.checksum_ok);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut wire = hdr().build(&[]);
        wire[0] = 0x65;
        assert!(matches!(
            Ipv4Header::parse(&wire),
            Err(ParseError::BadField { field: "version" })
        ));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(
            Ipv4Header::parse(&[0x45; 8]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn total_len_counts_header() {
        let h = Ipv4Header::udp(Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST, 0, 8);
        assert_eq!(h.total_len, 28);
    }
}
