#![warn(missing_docs)]

//! # wavelan-net
//!
//! Framing substrate for the WaveLAN error-characteristics reproduction.
//!
//! The SIGCOMM '96 study (Eckhardt & Steenkiste) transmitted "specially-formatted
//! UDP datagrams ... 256 32-bit words wrapped inside UDP, IP, Ethernet, and modem
//! framing" (Section 4). This crate implements those wire formats from scratch:
//!
//! * [`ethernet`] — Ethernet II frames with a real IEEE 802.3 CRC-32 trailer,
//! * [`ipv4`] — IPv4 headers with the internet checksum,
//! * [`udp`] — UDP headers with the optional checksum,
//! * [`testpkt`] — the paper's test-packet body format (a single 32-bit word
//!   repeated 256 times, incremented between packets),
//! * [`crc32`] / [`checksum`] — the two checksum algorithms used above,
//! * [`addr`] — MAC address type and helpers.
//!
//! Everything here is pure, deterministic, heap-light, and independent of the
//! simulator: the same parsers are used by the analysis pipeline to dissect
//! corrupted frames, so all parsers are *total* — they never panic on damaged
//! input, returning structured errors instead.

pub mod addr;
pub mod checksum;
pub mod crc32;
pub mod ethernet;
pub mod ipv4;
pub mod testpkt;
pub mod udp;

pub use addr::MacAddr;
pub use ethernet::{EtherType, EthernetFrame, ETHERNET_HEADER_LEN, ETHERNET_TRAILER_LEN};
pub use ipv4::{Ipv4Header, IPV4_HEADER_LEN};
pub use testpkt::{TestPacket, TEST_BODY_BYTES, TEST_BODY_WORDS};
pub use udp::{UdpHeader, UDP_HEADER_LEN};

/// Errors produced while parsing any of the wire formats in this crate.
///
/// Parsers are used on deliberately corrupted frames (the receiver in the paper
/// runs with CRC filtering *disabled*), so every failure mode is represented as
/// a value rather than a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed part of the header.
    Truncated {
        /// How many bytes the parser needed.
        needed: usize,
        /// How many bytes were available.
        got: usize,
    },
    /// A version / length field holds a value the format does not allow.
    BadField {
        /// Human-readable field name, e.g. `"ihl"`.
        field: &'static str,
    },
    /// A checksum or CRC did not verify.
    BadChecksum {
        /// Which check failed, e.g. `"ethernet-fcs"`.
        which: &'static str,
    },
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::Truncated { needed, got } => {
                write!(f, "truncated: needed {needed} bytes, got {got}")
            }
            ParseError::BadField { field } => write!(f, "invalid field: {field}"),
            ParseError::BadChecksum { which } => write!(f, "checksum failure: {which}"),
        }
    }
}

impl std::error::Error for ParseError {}
