//! UDP header construction and parsing, including the pseudo-header checksum.

use crate::ipv4::Ipv4Header;
use crate::ParseError;
use bytes::{BufMut, BytesMut};

/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A parsed (or to-be-built) UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length field: header plus payload.
    pub length: u16,
    /// Whether the checksum verified on parse (true when the sender elided it).
    pub checksum_ok: bool,
}

impl UdpHeader {
    /// Creates a header for a payload of `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> UdpHeader {
        UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
            checksum_ok: true,
        }
    }

    /// Serializes header + payload with a checksum computed over the IPv4
    /// pseudo-header, per RFC 768. A computed checksum of zero is transmitted
    /// as `0xFFFF`.
    pub fn build(&self, ip: &Ipv4Header, payload: &[u8]) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(UDP_HEADER_LEN + payload.len());
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.length);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(payload);
        let mut ck = ip.pseudo_header_checksum(self.length);
        ck.update(&buf);
        let value = match ck.finish() {
            0 => 0xFFFF,
            v => v,
        };
        buf[6..8].copy_from_slice(&value.to_be_bytes());
        buf.to_vec()
    }

    /// Parses the header from the front of `bytes` and verifies the checksum
    /// against the given IP header. Returns the header and payload offset.
    pub fn parse(bytes: &[u8], ip: &Ipv4Header) -> Result<(UdpHeader, usize), ParseError> {
        if bytes.len() < UDP_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: UDP_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let src_port = u16::from_be_bytes([bytes[0], bytes[1]]);
        let dst_port = u16::from_be_bytes([bytes[2], bytes[3]]);
        let length = u16::from_be_bytes([bytes[4], bytes[5]]);
        let wire_ck = u16::from_be_bytes([bytes[6], bytes[7]]);
        let checksum_ok = if wire_ck == 0 {
            true // sender elided the checksum
        } else if usize::from(length) > bytes.len() || usize::from(length) < UDP_HEADER_LEN {
            false // can't even cover the claimed region; treat as damage
        } else {
            let mut ck = ip.pseudo_header_checksum(length);
            ck.update(&bytes[..usize::from(length)]);
            ck.finish() == 0
        };
        Ok((
            UdpHeader {
                src_port,
                dst_port,
                length,
                checksum_ok,
            },
            UDP_HEADER_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip_for(len: usize) -> Ipv4Header {
        Ipv4Header::udp(
            Ipv4Addr::new(192, 168, 1, 1),
            Ipv4Addr::new(192, 168, 1, 2),
            7,
            UDP_HEADER_LEN + len,
        )
    }

    #[test]
    fn build_parse_round_trip() {
        let payload = b"wavelan test body";
        let ip = ip_for(payload.len());
        let udp = UdpHeader::new(5001, 5002, payload.len());
        let wire = udp.build(&ip, payload);
        let (parsed, off) = UdpHeader::parse(&wire, &ip).unwrap();
        assert_eq!(parsed.src_port, 5001);
        assert_eq!(parsed.dst_port, 5002);
        assert_eq!(parsed.length as usize, wire.len());
        assert!(parsed.checksum_ok);
        assert_eq!(&wire[off..], payload);
    }

    #[test]
    fn payload_corruption_detected() {
        let payload = vec![7u8; 64];
        let ip = ip_for(payload.len());
        let mut wire = UdpHeader::new(1, 2, payload.len()).build(&ip, &payload);
        wire[20] ^= 0x80;
        let (parsed, _) = UdpHeader::parse(&wire, &ip).unwrap();
        assert!(!parsed.checksum_ok);
    }

    #[test]
    fn elided_checksum_accepted() {
        let payload = vec![1u8; 16];
        let ip = ip_for(payload.len());
        let mut wire = UdpHeader::new(1, 2, payload.len()).build(&ip, &payload);
        wire[6] = 0;
        wire[7] = 0;
        let (parsed, _) = UdpHeader::parse(&wire, &ip).unwrap();
        assert!(parsed.checksum_ok);
    }

    #[test]
    fn truncated_datagram_fails_checksum() {
        // A mid-body truncation (the paper's most common damage mode under
        // spread-spectrum interference) must not verify.
        let payload = vec![3u8; 128];
        let ip = ip_for(payload.len());
        let wire = UdpHeader::new(9, 9, payload.len()).build(&ip, &payload);
        let cut = &wire[..wire.len() - 40];
        let (parsed, _) = UdpHeader::parse(cut, &ip).unwrap();
        assert!(!parsed.checksum_ok);
    }

    #[test]
    fn short_buffer_rejected() {
        let ip = ip_for(0);
        assert!(matches!(
            UdpHeader::parse(&[0u8; 4], &ip),
            Err(ParseError::Truncated { .. })
        ));
    }
}
