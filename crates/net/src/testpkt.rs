//! The study's test packet format (paper Section 4).
//!
//! "Within each trial, packets consisted of 256 32-bit words wrapped inside
//! UDP, IP, Ethernet, and modem framing. For each packet, the data words were
//! identical to facilitate identification even in the face of substantial
//! noise, and the data value was incremented between packets."
//!
//! The repetition is the clever part: even when many body bits are corrupted,
//! a majority vote across the 256 copies recovers the intended word, which
//! lets the analyzer (a) decide whether a damaged packet belongs to the test
//! series and (b) recover its sequence number. Truncated bodies are ambiguous
//! ("it is not possible to know which words are missing"), which is why the
//! paper reports exact bit-error syndromes only for damaged-but-not-truncated
//! packets.

use crate::ethernet::{EtherType, EthernetFrame};
use crate::ipv4::Ipv4Header;
use crate::udp::UdpHeader;
use crate::MacAddr;
use std::net::Ipv4Addr;

/// Number of 32-bit words in a test packet body.
pub const TEST_BODY_WORDS: usize = 256;
/// Number of body bytes (1024).
pub const TEST_BODY_BYTES: usize = TEST_BODY_WORDS * 4;
/// Number of body bits (8192) — the unit of the paper's "Bits Received" column.
pub const TEST_BODY_BITS: u64 = TEST_BODY_BYTES as u64 * 8;

/// UDP port the test stream uses (arbitrary; both ends agree).
pub const TEST_PORT: u16 = 5151;

/// Endpoint identity of a test station: its link and IP addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// Ethernet station address.
    pub mac: MacAddr,
    /// IPv4 address.
    pub ip: Ipv4Addr,
}

impl Endpoint {
    /// Conventional test endpoints: station `id` gets `02:00:00:00:00:id`
    /// and `10.0.0.id`.
    pub fn station(id: u8) -> Endpoint {
        Endpoint {
            mac: MacAddr::station(u16::from(id)),
            ip: Ipv4Addr::new(10, 0, 0, id),
        }
    }

    /// A *foreign* machine (an outsider from another building, a competing
    /// deployment): a different OUI entirely, so its addresses sit tens of
    /// bits away from every test endpoint and cannot be mistaken for a
    /// damaged test address.
    pub fn foreign(id: u8) -> Endpoint {
        Endpoint {
            mac: MacAddr([0x00, 0xA0, 0x24, 0x9C, 0x33, id]),
            ip: Ipv4Addr::new(192, 168, 77, id),
        }
    }
}

/// A test packet: a sequence number, encoded as 256 copies of a word derived
/// from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestPacket {
    /// Sequence number within the trial (word value = `seq`).
    pub seq: u32,
}

impl TestPacket {
    /// The 32-bit word this packet repeats. Identical to the sequence number;
    /// kept as a function so the mapping is in exactly one place.
    pub fn word(&self) -> u32 {
        self.seq
    }

    /// Renders the 1024-byte body: 256 big-endian copies of [`TestPacket::word`].
    pub fn body(&self) -> Vec<u8> {
        let w = self.word().to_be_bytes();
        let mut body = Vec::with_capacity(TEST_BODY_BYTES);
        for _ in 0..TEST_BODY_WORDS {
            body.extend_from_slice(&w);
        }
        body
    }

    /// Builds the complete on-wire Ethernet frame (header, IP, UDP, body,
    /// FCS) from `src` to `dst`. The IP identification field carries the low
    /// 16 bits of the sequence number, as a secondary recovery hint.
    pub fn build_frame(&self, src: Endpoint, dst: Endpoint) -> Vec<u8> {
        let body = self.body();
        let udp = UdpHeader::new(TEST_PORT, TEST_PORT, body.len());
        let ip = Ipv4Header::udp(
            src.ip,
            dst.ip,
            (self.seq & 0xFFFF) as u16,
            usize::from(udp.length),
        );
        let udp_bytes = udp.build(&ip, &body);
        let ip_bytes = ip.build(&udp_bytes);
        EthernetFrame::build(dst.mac, src.mac, EtherType::Ipv4, &ip_bytes)
    }

    /// Total frame length on the wire (constant for all test packets):
    /// 14 (eth) + 20 (ip) + 8 (udp) + 1024 (body) + 4 (fcs) = 1070 bytes.
    pub fn frame_len() -> usize {
        crate::ETHERNET_HEADER_LEN
            + crate::IPV4_HEADER_LEN
            + crate::UDP_HEADER_LEN
            + TEST_BODY_BYTES
            + crate::ETHERNET_TRAILER_LEN
    }

    /// Byte offset of the body within the frame.
    pub fn body_offset() -> usize {
        crate::ETHERNET_HEADER_LEN + crate::IPV4_HEADER_LEN + crate::UDP_HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Header;
    use crate::udp::UdpHeader;

    #[test]
    fn body_repeats_word() {
        let p = TestPacket { seq: 0xDEAD_BEEF };
        let body = p.body();
        assert_eq!(body.len(), TEST_BODY_BYTES);
        for chunk in body.chunks_exact(4) {
            assert_eq!(chunk, &0xDEAD_BEEFu32.to_be_bytes());
        }
    }

    #[test]
    fn frame_round_trips_through_all_layers() {
        let src = Endpoint::station(1);
        let dst = Endpoint::station(2);
        let p = TestPacket { seq: 12345 };
        let wire = p.build_frame(src, dst);
        assert_eq!(wire.len(), TestPacket::frame_len());

        let eth = EthernetFrame::parse(&wire).unwrap();
        assert!(eth.fcs_ok);
        assert_eq!(eth.src, src.mac);
        assert_eq!(eth.dst, dst.mac);
        let (ip, ip_off) = Ipv4Header::parse(&eth.payload).unwrap();
        assert!(ip.checksum_ok);
        assert_eq!(ip.ident, 12345);
        let (udp, udp_off) = UdpHeader::parse(&eth.payload[ip_off..], &ip).unwrap();
        assert!(udp.checksum_ok);
        assert_eq!(udp.dst_port, TEST_PORT);
        let body = &eth.payload[ip_off + udp_off..ip_off + udp_off + TEST_BODY_BYTES];
        assert_eq!(body, &p.body()[..]);
    }

    #[test]
    fn sequence_changes_body() {
        let a = TestPacket { seq: 1 }.body();
        let b = TestPacket { seq: 2 }.body();
        assert_ne!(a, b);
    }

    #[test]
    fn frame_len_is_1070() {
        assert_eq!(TestPacket::frame_len(), 1070);
    }

    #[test]
    fn body_offset_is_42() {
        assert_eq!(TestPacket::body_offset(), 42);
    }
}
