//! The internet checksum (RFC 1071), used by the IPv4 header and UDP.
//!
//! The ones'-complement sum has properties the analysis pipeline relies on:
//! it is order-independent across 16-bit words, and a frame whose checksum
//! field was corrupted in flight will (very likely) fail verification, which
//! the paper's receiver treats as "wrapper damage".

/// Incremental ones'-complement checksum state.
///
/// Feed it byte slices (odd-length slices are handled by buffering the
/// dangling byte) and call [`Checksum::finish`] for the final 16-bit value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    /// 32-bit accumulator; folded on demand.
    sum: u32,
    /// A pending odd byte from a previous `update`, if any.
    pending: Option<u8>,
}

impl Checksum {
    /// Starts a fresh computation.
    pub fn new() -> Checksum {
        Checksum::default()
    }

    /// Folds `data` into the running sum.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        if let Some(hi) = self.pending.take() {
            if let Some((&lo, rest)) = data.split_first() {
                self.sum += u32::from(u16::from_be_bytes([hi, lo]));
                data = rest;
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [odd] = chunks.remainder() {
            self.pending = Some(*odd);
        }
    }

    /// Folds a single big-endian 16-bit word into the sum.
    pub fn update_u16(&mut self, word: u16) {
        self.update(&word.to_be_bytes());
    }

    /// Finishes the computation: pads a dangling byte with zero, folds the
    /// carries, and complements. Returns the value to *store* in a checksum
    /// field.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            self.sum += u32::from(u16::from_be_bytes([hi, 0]));
        }
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot internet checksum of a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.update(data);
    c.finish()
}

/// Verifies a region that *includes* its checksum field: the ones'-complement
/// sum over the whole region must be zero (i.e. `internet_checksum` returns 0).
pub fn verify(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The worked example from RFC 1071 section 3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold -> 0xddf2
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn verify_round_trip() {
        let mut data = vec![
            0x45u8, 0x00, 0x00, 0x54, 0xbe, 0xef, 0x40, 0x00, 0x40, 0x11, 0, 0,
        ];
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
    }

    #[test]
    fn odd_length_handled() {
        let data = [1u8, 2, 3];
        // 0x0102 + 0x0300 = 0x0402
        assert_eq!(internet_checksum(&data), !0x0402u16);
    }

    #[test]
    fn split_updates_match_oneshot() {
        let data: Vec<u8> = (0..=255u8).collect();
        for split in [0usize, 1, 7, 128, 255, 256] {
            let mut c = Checksum::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), internet_checksum(&data), "split at {split}");
        }
    }

    #[test]
    fn odd_then_odd_updates() {
        let mut c = Checksum::new();
        c.update(&[0xAB]);
        c.update(&[0xCD]);
        assert_eq!(c.finish(), internet_checksum(&[0xAB, 0xCD]));
    }

    #[test]
    fn corrupted_data_fails_verify() {
        let mut data = vec![0u8; 20];
        data[0] = 0x45;
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[4] ^= 0x01;
        assert!(!verify(&data));
    }
}
