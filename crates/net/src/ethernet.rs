//! Ethernet II framing with the 802.3 frame check sequence.
//!
//! WaveLAN presents itself to the host as an Ethernet: the 82593 controller
//! does standard "framing, address recognition and filtering, CRC generation
//! and checking" (paper Section 2). The modem-level 16-bit network ID that
//! WaveLAN prepends on air is handled one layer down, in `wavelan-mac`; this
//! module covers the portion visible to the host driver.
//!
//! Layout (lengths in bytes):
//!
//! ```text
//! | dst 6 | src 6 | ethertype 2 | payload 46..1500 | FCS 4 |
//! ```
//!
//! The builder *always* appends a valid FCS; the parser reports — but does not
//! reject on — FCS failure, because the study's receiver runs with "automatic
//! CRC filtering" disabled so that damaged frames reach the trace.

use crate::crc32::crc32;
use crate::{MacAddr, ParseError};
use bytes::{BufMut, BytesMut};

/// Bytes of destination + source + ethertype.
pub const ETHERNET_HEADER_LEN: usize = 14;
/// Bytes of the trailing frame check sequence.
pub const ETHERNET_TRAILER_LEN: usize = 4;
/// Smallest payload a conforming frame may carry (padding applies below this).
pub const MIN_PAYLOAD: usize = 46;
/// Largest payload (we do not model jumbo frames).
pub const MAX_PAYLOAD: usize = 1500;

/// Well-known ethertype values used by the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// ARP, `0x0806` — the paper notes many "outsider" packets were ARP.
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// The on-wire 16-bit value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Classifies an on-wire value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// A parsed view of an Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination station address.
    pub dst: MacAddr,
    /// Source station address.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Payload bytes (between header and FCS). May include padding.
    pub payload: Vec<u8>,
    /// Whether the trailing FCS verified against the received bytes.
    pub fcs_ok: bool,
}

impl EthernetFrame {
    /// Serializes a frame: header, payload (padded to the 46-byte minimum),
    /// and a freshly computed FCS.
    pub fn build(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: &[u8]) -> Vec<u8> {
        let padded_len = payload.len().max(MIN_PAYLOAD);
        let mut buf =
            BytesMut::with_capacity(ETHERNET_HEADER_LEN + padded_len + ETHERNET_TRAILER_LEN);
        buf.put_slice(dst.as_bytes());
        buf.put_slice(src.as_bytes());
        buf.put_u16(ethertype.to_u16());
        buf.put_slice(payload);
        buf.put_bytes(0, padded_len - payload.len());
        let fcs = crc32(&buf);
        // The FCS is transmitted least-significant-byte first (802.3 bit order).
        buf.put_u32_le(fcs);
        buf.to_vec()
    }

    /// Parses a frame, tolerating body damage. Only an outright short buffer
    /// (shorter than header + FCS) is an error; a bad FCS is reported through
    /// [`EthernetFrame::fcs_ok`].
    pub fn parse(bytes: &[u8]) -> Result<EthernetFrame, ParseError> {
        let min = ETHERNET_HEADER_LEN + ETHERNET_TRAILER_LEN;
        if bytes.len() < min {
            return Err(ParseError::Truncated {
                needed: min,
                got: bytes.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&bytes[0..6]);
        src.copy_from_slice(&bytes[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([bytes[12], bytes[13]]));
        let body_end = bytes.len() - ETHERNET_TRAILER_LEN;
        let payload = bytes[ETHERNET_HEADER_LEN..body_end].to_vec();
        let wire_fcs = u32::from_le_bytes([
            bytes[body_end],
            bytes[body_end + 1],
            bytes[body_end + 2],
            bytes[body_end + 3],
        ]);
        let fcs_ok = crc32(&bytes[..body_end]) == wire_fcs;
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload,
            fcs_ok,
        })
    }

    /// Verifies the trailing FCS without materializing the frame (no payload
    /// copy — usable from allocation-free streaming folds). Same acceptance
    /// rule as [`EthernetFrame::parse`]: only an outright short buffer is an
    /// error; the FCS verdict itself is the `Ok` value.
    pub fn check_fcs(bytes: &[u8]) -> Result<bool, ParseError> {
        let min = ETHERNET_HEADER_LEN + ETHERNET_TRAILER_LEN;
        if bytes.len() < min {
            return Err(ParseError::Truncated {
                needed: min,
                got: bytes.len(),
            });
        }
        let body_end = bytes.len() - ETHERNET_TRAILER_LEN;
        let wire_fcs = u32::from_le_bytes([
            bytes[body_end],
            bytes[body_end + 1],
            bytes[body_end + 2],
            bytes[body_end + 3],
        ]);
        Ok(crc32(&bytes[..body_end]) == wire_fcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (MacAddr, MacAddr, Vec<u8>) {
        (
            MacAddr::station(1),
            MacAddr::station(2),
            (0u8..100).collect(),
        )
    }

    #[test]
    fn build_parse_round_trip() {
        let (dst, src, payload) = sample();
        let wire = EthernetFrame::build(dst, src, EtherType::Ipv4, &payload);
        let frame = EthernetFrame::parse(&wire).unwrap();
        assert_eq!(frame.dst, dst);
        assert_eq!(frame.src, src);
        assert_eq!(frame.ethertype, EtherType::Ipv4);
        assert_eq!(&frame.payload[..payload.len()], &payload[..]);
        assert!(frame.fcs_ok);
    }

    #[test]
    fn short_payload_is_padded() {
        let (dst, src, _) = sample();
        let wire = EthernetFrame::build(dst, src, EtherType::Arp, b"hi");
        assert_eq!(
            wire.len(),
            ETHERNET_HEADER_LEN + MIN_PAYLOAD + ETHERNET_TRAILER_LEN
        );
        let frame = EthernetFrame::parse(&wire).unwrap();
        assert_eq!(frame.payload.len(), MIN_PAYLOAD);
        assert_eq!(&frame.payload[..2], b"hi");
        assert!(frame.fcs_ok);
    }

    #[test]
    fn corrupted_body_fails_fcs_but_parses() {
        let (dst, src, payload) = sample();
        let mut wire = EthernetFrame::build(dst, src, EtherType::Ipv4, &payload);
        wire[20] ^= 0x40;
        let frame = EthernetFrame::parse(&wire).unwrap();
        assert!(!frame.fcs_ok);
    }

    #[test]
    fn corrupted_address_still_visible() {
        // Section 7.4: corrupted station addresses must still be observable.
        let (dst, src, payload) = sample();
        let mut wire = EthernetFrame::build(dst, src, EtherType::Ipv4, &payload);
        wire[0] ^= 0xFF;
        let frame = EthernetFrame::parse(&wire).unwrap();
        assert_ne!(frame.dst, dst);
        assert_eq!(frame.dst.bit_distance(&dst), 8);
        assert!(!frame.fcs_ok);
    }

    #[test]
    fn too_short_is_error() {
        let err = EthernetFrame::parse(&[0u8; 10]).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { .. }));
    }

    #[test]
    fn check_fcs_agrees_with_parse() {
        let (dst, src, payload) = sample();
        let mut wire = EthernetFrame::build(dst, src, EtherType::Ipv4, &payload);
        assert_eq!(EthernetFrame::check_fcs(&wire), Ok(true));
        wire[20] ^= 0x40;
        assert_eq!(EthernetFrame::check_fcs(&wire), Ok(false));
        assert!(matches!(
            EthernetFrame::check_fcs(&wire[..10]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn ethertype_round_trip() {
        for et in [EtherType::Ipv4, EtherType::Arp, EtherType::Other(0x88cc)] {
            assert_eq!(EtherType::from_u16(et.to_u16()), et);
        }
    }
}
