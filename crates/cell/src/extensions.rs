//! The paper's Section 8 extensions, quantified: transmit power control and
//! multiple spreading sequences (CDMA).
//!
//! > "a WaveLAN-like device including multiple spreading sequences for sharp
//! > cell boundaries and transmitter power control to reduce unnecessary
//! > interference seems plausible, and would allow the construction of truly
//! > cellular networks. ... it is difficult to construct large sequence
//! > families which simultaneously have low self-correlation and low
//! > cross-correlation, and the effect of higher correlation would be more
//! > errors"
//!
//! [`required_eirp_dbm`] and [`interference_radius_ft`] quantify how much
//! power control shrinks a transmitter's interference footprint;
//! [`evaluate_family`] quantifies the cross-correlation error floor of a
//! pseudo-random code family — exactly the trade-off the quote describes.

use wavelan_phy::agc::{level_units_to_dbm, power_to_level_units};
use wavelan_phy::math::{db_to_linear, linear_to_db};
use wavelan_phy::modulation::dqpsk_ber;
use wavelan_phy::spreading::{cross_correlation, SpreadingCode};
use wavelan_sim::propagation::SYSTEM_LOSS_DB;
use wavelan_sim::{FloorPlan, Point, Propagation};

/// The EIRP (dBm, *before* the lumped system loss) a transmitter needs for
/// its signal to arrive at `to` with the given AGC level.
pub fn required_eirp_dbm(
    from: Point,
    to: Point,
    prop: &Propagation,
    plan: &FloorPlan,
    target_level_units: f64,
) -> f64 {
    // Path loss experienced at reference power:
    let at_full = prop.received_power_dbm(0.0, from, to, plan); // loss ≡ −at_full
    level_units_to_dbm(target_level_units) - at_full
}

/// The open-space distance (feet) at which a transmitter of the given EIRP
/// still asserts carrier sense at `sense_level_units` — its interference
/// footprint radius. Solved by bisection on the monotone path-loss curve.
pub fn interference_radius_ft(eirp_dbm: f64, sense_level_units: f64, prop: &Propagation) -> f64 {
    let plan = FloorPlan::open();
    let origin = Point::new(0.0, 0.0);
    let level_at = |d_ft: f64| {
        power_to_level_units(prop.received_power_dbm(
            eirp_dbm - SYSTEM_LOSS_DB,
            origin,
            Point::feet(d_ft.max(0.01), 0.0),
            &plan,
        ))
    };
    if level_at(0.1) < sense_level_units {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.1, 10_000.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if level_at(mid) >= sense_level_units {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Cross-correlation properties of a spreading-code family and the error
/// floor they imply for CDMA operation.
#[derive(Debug, Clone)]
pub struct CdmaFamilyReport {
    /// Number of codes.
    pub codes: usize,
    /// Chips per code.
    pub chip_len: usize,
    /// Largest |cross-correlation| over distinct pairs.
    pub worst_cross: f64,
    /// Mean cross-correlation *power* (xc²) over distinct pairs.
    pub mean_cross_power: f64,
}

impl CdmaFamilyReport {
    /// Post-despreading SINR (dB) for a victim whose cell hears `k`
    /// equal-power same-band transmitters using other codes of this family.
    /// Infinite when k = 0.
    pub fn sinr_floor_db(&self, k: usize) -> f64 {
        if k == 0 {
            return f64::INFINITY;
        }
        linear_to_db(1.0 / (k as f64 * self.mean_cross_power))
    }

    /// Estimated DQPSK BER floor at `k` equal-power cross-code interferers,
    /// using the workspace's bandwidth gain between SNR and Eb/N0.
    pub fn ber_floor(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let ebn0_db = self.sinr_floor_db(k) + wavelan_phy::link::BANDWIDTH_GAIN_DB;
        dqpsk_ber(db_to_linear(ebn0_db))
    }
}

/// Generates and measures a pseudo-random ±1 code family.
pub fn evaluate_family(count: usize, chip_len: usize, seed: u64) -> CdmaFamilyReport {
    let family = SpreadingCode::family(count, chip_len, seed);
    let mut worst: f64 = 0.0;
    let mut sum_power = 0.0;
    let mut pairs = 0usize;
    for i in 0..family.len() {
        for j in (i + 1)..family.len() {
            let xc = cross_correlation(&family[i], &family[j]);
            worst = worst.max(xc.abs());
            sum_power += xc * xc;
            pairs += 1;
        }
    }
    CdmaFamilyReport {
        codes: count,
        chip_len,
        worst_cross: worst,
        mean_cross_power: if pairs == 0 {
            0.0
        } else {
            sum_power / pairs as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavelan_phy::TX_POWER_DBM;

    fn prop() -> Propagation {
        let mut p = Propagation::indoor(0);
        p.shadowing_sigma_db = 0.0;
        p
    }

    #[test]
    fn required_power_hits_the_target_level() {
        let p = prop();
        let plan = FloorPlan::open();
        let from = Point::feet(0.0, 0.0);
        let to = Point::feet(40.0, 0.0);
        let eirp = required_eirp_dbm(from, to, &p, &plan, 15.0);
        let achieved = power_to_level_units(p.received_power_dbm(eirp, from, to, &plan));
        assert!((achieved - 15.0).abs() < 1e-6, "{achieved}");
        // Much less than full power is needed at 40 ft.
        assert!(eirp < TX_POWER_DBM - SYSTEM_LOSS_DB, "{eirp}");
    }

    #[test]
    fn power_control_shrinks_the_interference_footprint() {
        let p = prop();
        let plan = FloorPlan::open();
        let from = Point::feet(0.0, 0.0);
        let to = Point::feet(20.0, 0.0);
        // Full power vs just-enough power for a level-12 link at 20 ft.
        let full_radius = interference_radius_ft(TX_POWER_DBM, 5.0, &p);
        let controlled = required_eirp_dbm(from, to, &p, &plan, 12.0) + SYSTEM_LOSS_DB;
        let controlled_radius = interference_radius_ft(controlled, 5.0, &p);
        assert!(
            controlled_radius < full_radius / 2.5,
            "controlled {controlled_radius} vs full {full_radius}"
        );
        // The controlled footprint still covers the intended receiver.
        assert!(controlled_radius > 20.0, "{controlled_radius}");
    }

    #[test]
    fn interference_radius_monotone_in_power() {
        let p = prop();
        let r_lo = interference_radius_ft(-20.0, 5.0, &p);
        let r_hi = interference_radius_ft(0.0, 5.0, &p);
        assert!(r_hi > r_lo);
        // Absurdly weak transmitter: zero footprint.
        assert_eq!(interference_radius_ft(-200.0, 5.0, &p), 0.0);
    }

    #[test]
    fn short_code_families_leak() {
        // 11-chip random families have substantial cross-correlation — the
        // paper's "difficult to construct" point.
        let report = evaluate_family(8, 11, 42);
        assert!(report.worst_cross > 0.2, "{report:?}");
        // Mean cross power near the 1/N theory value for random codes.
        assert!(
            (report.mean_cross_power - 1.0 / 11.0).abs() < 0.08,
            "{}",
            report.mean_cross_power
        );
    }

    #[test]
    fn longer_codes_suppress_better() {
        let short = evaluate_family(8, 11, 1);
        let long = evaluate_family(8, 127, 1);
        assert!(long.mean_cross_power < short.mean_cross_power / 4.0);
        assert!(long.sinr_floor_db(4) > short.sinr_floor_db(4) + 6.0);
    }

    #[test]
    fn ber_floor_grows_with_interferers() {
        let report = evaluate_family(8, 31, 3);
        assert_eq!(report.ber_floor(0), 0.0);
        let b1 = report.ber_floor(1);
        let b4 = report.ber_floor(4);
        assert!(b4 > b1, "{b1} vs {b4}");
        assert!(report.sinr_floor_db(0).is_infinite());
    }
}
