//! Receive-threshold cell planning.
//!
//! Given stations clustered into intended cells, compute the signal-level
//! matrix between all stations and decide whether receive thresholds can
//! isolate the cells:
//!
//! * every in-cell link must clear the chosen threshold comfortably (or the
//!   cell's own traffic gets filtered),
//! * every out-of-cell signal must fall short of it by a safety margin —
//!   Section 6.2: "the difference in average signal level for senders inside
//!   and outside of the cell should be at least 6, although 8-10 would be
//!   more desirable".

use wavelan_phy::agc::power_to_level_units;
use wavelan_sim::{FloorPlan, Point, Propagation};

/// The margin Section 6.2 calls the minimum workable separation.
pub const MIN_MARGIN_UNITS: f64 = 6.0;
/// The margin Section 6.2 calls desirable.
pub const DESIRABLE_MARGIN_UNITS: f64 = 8.0;

/// A station-to-cell assignment to evaluate.
#[derive(Debug, Clone)]
pub struct CellPlan {
    /// Station positions.
    pub stations: Vec<Point>,
    /// `cells[i]` = cell index of station `i`.
    pub cells: Vec<usize>,
}

/// Per-cell evaluation of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CellVerdict {
    /// Cell index.
    pub cell: usize,
    /// Weakest in-cell link level (what the threshold must stay below).
    pub weakest_internal: f64,
    /// Strongest out-of-cell signal heard by any member (what the threshold
    /// must stay above).
    pub strongest_external: f64,
    /// `weakest_internal − strongest_external`.
    pub margin: f64,
    /// A workable threshold (midpoint), when one exists.
    pub threshold: Option<u8>,
}

/// Whole-plan verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanVerdict {
    /// Per-cell results.
    pub cells: Vec<CellVerdict>,
}

impl PlanVerdict {
    /// True when every cell has at least the Section 6.2 minimum margin.
    pub fn feasible(&self) -> bool {
        self.cells.iter().all(|c| c.margin >= MIN_MARGIN_UNITS)
    }

    /// True when every cell has the desirable margin.
    pub fn comfortable(&self) -> bool {
        self.cells
            .iter()
            .all(|c| c.margin >= DESIRABLE_MARGIN_UNITS)
    }

    /// The tightest cell margin.
    pub fn worst_margin(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| c.margin)
            .fold(f64::INFINITY, f64::min)
    }
}

impl CellPlan {
    /// Signal level (in AGC units) from station `i` to station `j`.
    fn level(&self, i: usize, j: usize, prop: &Propagation, plan: &FloorPlan) -> f64 {
        power_to_level_units(prop.wavelan_rx_dbm(self.stations[i], self.stations[j], plan))
    }

    /// Evaluates the plan under a propagation model and floor plan.
    pub fn evaluate(&self, prop: &Propagation, plan: &FloorPlan) -> PlanVerdict {
        assert_eq!(
            self.stations.len(),
            self.cells.len(),
            "one cell index per station"
        );
        let n_cells = self.cells.iter().copied().max().map_or(0, |m| m + 1);
        let mut verdicts = Vec::with_capacity(n_cells);
        for cell in 0..n_cells {
            let members: Vec<usize> = (0..self.stations.len())
                .filter(|&i| self.cells[i] == cell)
                .collect();
            let mut weakest_internal = f64::INFINITY;
            let mut strongest_external = f64::NEG_INFINITY;
            for &m in &members {
                for other in 0..self.stations.len() {
                    if other == m {
                        continue;
                    }
                    let level = self.level(other, m, prop, plan);
                    if self.cells[other] == cell {
                        weakest_internal = weakest_internal.min(level);
                    } else {
                        strongest_external = strongest_external.max(level);
                    }
                }
            }
            // Degenerate cells: a single isolated station has no internal
            // links (threshold only needs to beat outsiders), and a plan
            // with one cell has no external signals.
            if weakest_internal.is_infinite() {
                weakest_internal = f64::from(wavelan_phy::agc::MAX_LEVEL);
            }
            if strongest_external.is_infinite() {
                strongest_external = 0.0;
            }
            let margin = weakest_internal - strongest_external;
            let threshold = if margin >= MIN_MARGIN_UNITS {
                // Sit just above the outsiders, leaving the bulk of the
                // margin as headroom against per-packet level jitter.
                Some((strongest_external + 3.0).ceil().clamp(0.0, 63.0) as u8)
            } else {
                None
            };
            verdicts.push(CellVerdict {
                cell,
                weakest_internal,
                strongest_external,
                margin,
                threshold,
            });
        }
        PlanVerdict { cells: verdicts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavelan_phy::Material;
    use wavelan_sim::Segment;

    fn no_shadow_prop() -> Propagation {
        let mut p = Propagation::indoor(0);
        p.shadowing_sigma_db = 0.0;
        p
    }

    /// Two tight clusters 120 ft apart: the geometry the paper says *does*
    /// work ("clustered with significant signal attenuation between
    /// clusters", Section 5.3).
    fn far_clusters() -> CellPlan {
        CellPlan {
            stations: vec![
                Point::feet(0.0, 0.0),
                Point::feet(8.0, 0.0),
                Point::feet(120.0, 0.0),
                Point::feet(128.0, 0.0),
            ],
            cells: vec![0, 0, 1, 1],
        }
    }

    #[test]
    fn distant_clusters_are_isolable() {
        let verdict = far_clusters().evaluate(&no_shadow_prop(), &FloorPlan::open());
        assert!(verdict.feasible(), "{verdict:?}");
        assert!(verdict.comfortable(), "{verdict:?}");
        for c in &verdict.cells {
            let t = c.threshold.expect("threshold exists");
            assert!(f64::from(t) > c.strongest_external);
            assert!(f64::from(t) < c.weakest_internal);
        }
    }

    #[test]
    fn single_wall_is_not_a_cell_boundary() {
        // Section 6.2: "it seems unlikely that there are many cases where a
        // single building wall can be pressed into service as a cell
        // boundary". Two offices side by side, one concrete wall between.
        let plan = CellPlan {
            stations: vec![
                Point::feet(0.0, 0.0),
                Point::feet(8.0, 0.0),
                Point::feet(16.0, 0.0),
                Point::feet(24.0, 0.0),
            ],
            cells: vec![0, 0, 1, 1],
        };
        let floor = FloorPlan::open().with_wall(
            Segment::feet(12.0, -20.0, 12.0, 20.0),
            Material::ConcreteBlock,
        );
        let verdict = plan.evaluate(&no_shadow_prop(), &floor);
        assert!(
            !verdict.feasible(),
            "a 2-unit wall must not isolate: {verdict:?}"
        );
    }

    #[test]
    fn multiple_walls_do_isolate() {
        // The same offices separated by three plaster walls: 15 units of
        // attenuation makes a real boundary.
        let plan = CellPlan {
            stations: vec![
                Point::feet(0.0, 0.0),
                Point::feet(8.0, 0.0),
                Point::feet(26.0, 0.0),
                Point::feet(34.0, 0.0),
            ],
            cells: vec![0, 0, 1, 1],
        };
        let mut floor = FloorPlan::open();
        for x in [12.0, 16.0, 20.0] {
            floor = floor.with_wall(Segment::feet(x, -20.0, x, 20.0), Material::PlasterWireMesh);
        }
        let verdict = plan.evaluate(&no_shadow_prop(), &floor);
        assert!(verdict.feasible(), "{verdict:?}");
    }

    #[test]
    fn margin_accounting_is_symmetric_free_space() {
        let verdict = far_clusters().evaluate(&no_shadow_prop(), &FloorPlan::open());
        // Symmetric geometry → both cells see the same margin.
        assert!((verdict.cells[0].margin - verdict.cells[1].margin).abs() < 1e-6);
        assert_eq!(verdict.worst_margin(), verdict.cells[0].margin);
    }

    #[test]
    fn single_cell_plan_is_trivially_feasible() {
        let plan = CellPlan {
            stations: vec![Point::feet(0.0, 0.0), Point::feet(10.0, 0.0)],
            cells: vec![0, 0],
        };
        let verdict = plan.evaluate(&no_shadow_prop(), &FloorPlan::open());
        assert!(verdict.feasible());
        assert_eq!(verdict.cells.len(), 1);
    }
}
