#![warn(missing_docs)]

//! # wavelan-cell
//!
//! Pseudo-cellular architecture analysis.
//!
//! The paper's architectural thread (Sections 5.3, 6.2, 7.4 and 8): WaveLAN
//! has no power control and one spreading sequence, so the only cell-forming
//! tool is the receive threshold. That works — Table 14 shows a threshold of
//! 25 completely masking two jammers — but imperfectly: thresholds need "a
//! margin of several units" (Figure 3), single walls don't attenuate enough
//! to be cell boundaries (Section 6.2's "at least 6, although 8–10 would be
//! more desirable"), and the resulting *border zones* host mobile clients
//! that disrupt multiple cells at once (the hidden-transmitter discussion in
//! Section 7.4).
//!
//! Modules:
//!
//! * [`pseudocell`] — threshold planning: is a given clustering of stations
//!   into cells feasible with receive thresholds, and with what margin?
//! * [`border`] — border-zone mapping and hidden-terminal detection over a
//!   grid of client positions,
//! * [`capacity`] — aggregate-throughput estimation under carrier-sense
//!   coupling between cells,
//! * [`extensions`] — the paper's Section 8 "what WaveLAN would need":
//!   transmit power control and CDMA-style multiple spreading sequences,
//!   quantified,
//! * [`roaming`] — a mobile client walking between two pseudo-cells, with
//!   the Section 7.4 disruption footprint measured end-to-end.

pub mod border;
pub mod capacity;
pub mod extensions;
pub mod pseudocell;
pub mod roaming;

pub use border::{BorderReport, HiddenTerminalPair};
pub use capacity::coupling_throughput;
pub use pseudocell::{CellPlan, PlanVerdict};
pub use roaming::{walk, RoamReport, TwoCells};
