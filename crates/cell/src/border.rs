//! Border zones and hidden terminals.
//!
//! Section 7.4: "In most environments, cells will be separated by 'border
//! zones' in which mobile clients will have poor performance and can easily
//! disrupt communication in adjacent pseudo-cells. The reason is that hosts
//! in the border zone can hear and be heard by hosts in multiple
//! pseudo-cells, while the hosts in the different pseudo-cells cannot hear
//! each other. ... This is a special case of the classical 'hidden
//! transmitter' problem."
//!
//! [`map_border_zone`] walks a grid of candidate client positions and
//! reports, for each, how many cells it couples to; [`find_hidden_terminals`]
//! enumerates station pairs that cannot hear each other but share a victim.

use wavelan_phy::agc::power_to_level_units;
use wavelan_sim::{FloorPlan, Point, Propagation};

/// Whether a client at a position couples to each cell.
#[derive(Debug, Clone)]
pub struct BorderPoint {
    /// The client position.
    pub pos: Point,
    /// Cells whose members this client would hear / be heard by at the
    /// cell's threshold.
    pub coupled_cells: Vec<usize>,
}

impl BorderPoint {
    /// In-border means coupled to two or more cells.
    pub fn in_border_zone(&self) -> bool {
        self.coupled_cells.len() >= 2
    }

    /// Orphaned means coupled to none (a dead zone).
    pub fn orphaned(&self) -> bool {
        self.coupled_cells.is_empty()
    }
}

/// Aggregate result of a border-zone survey.
#[derive(Debug, Clone)]
pub struct BorderReport {
    /// Every surveyed point.
    pub points: Vec<BorderPoint>,
}

impl BorderReport {
    /// Fraction of surveyed positions inside a border zone.
    pub fn border_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.in_border_zone()).count() as f64 / self.points.len() as f64
    }

    /// Fraction of surveyed positions in no cell at all.
    pub fn orphan_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.orphaned()).count() as f64 / self.points.len() as f64
    }
}

/// Surveys a rectangular grid of client positions against cells described by
/// `(member positions, cell threshold)`.
///
/// A client couples to a cell when its signal at *any* member reaches the
/// cell's threshold (it would assert carrier / deliver packets there).
pub fn map_border_zone(
    cells: &[(Vec<Point>, u8)],
    x_range_ft: (f64, f64),
    y_range_ft: (f64, f64),
    step_ft: f64,
    prop: &Propagation,
    plan: &FloorPlan,
) -> BorderReport {
    let mut points = Vec::new();
    let mut x = x_range_ft.0;
    while x <= x_range_ft.1 {
        let mut y = y_range_ft.0;
        while y <= y_range_ft.1 {
            let pos = Point::feet(x, y);
            let mut coupled = Vec::new();
            for (cell_idx, (members, threshold)) in cells.iter().enumerate() {
                let heard = members.iter().any(|m| {
                    let level = power_to_level_units(prop.wavelan_rx_dbm(pos, *m, plan));
                    level >= f64::from(*threshold)
                });
                if heard {
                    coupled.push(cell_idx);
                }
            }
            points.push(BorderPoint {
                pos,
                coupled_cells: coupled,
            });
            y += step_ft;
        }
        x += step_ft;
    }
    BorderReport { points }
}

/// A hidden-terminal configuration: `a` and `b` cannot hear each other, but
/// both reach `victim` — so their transmissions can collide at the victim
/// without carrier sense ever firing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiddenTerminalPair {
    /// First transmitter (station index).
    pub a: usize,
    /// Second transmitter (station index).
    pub b: usize,
    /// The station both reach.
    pub victim: usize,
}

/// Finds all hidden-terminal triples among `stations`, where "hear" means
/// signal level ≥ `threshold`.
pub fn find_hidden_terminals(
    stations: &[Point],
    threshold: u8,
    prop: &Propagation,
    plan: &FloorPlan,
) -> Vec<HiddenTerminalPair> {
    let hears = |i: usize, j: usize| {
        power_to_level_units(prop.wavelan_rx_dbm(stations[i], stations[j], plan))
            >= f64::from(threshold)
    };
    let n = stations.len();
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if hears(a, b) {
                continue; // they coordinate via carrier sense
            }
            for victim in 0..n {
                if victim != a && victim != b && hears(a, victim) && hears(b, victim) {
                    out.push(HiddenTerminalPair { a, b, victim });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prop() -> Propagation {
        let mut p = Propagation::indoor(0);
        p.shadowing_sigma_db = 0.0;
        p
    }

    #[test]
    fn midpoint_between_cells_is_border() {
        // Two cells 150 ft apart with thresholds that each cover ~80 ft:
        // the middle hears both.
        let cells = vec![
            (vec![Point::feet(0.0, 0.0)], 10u8),
            (vec![Point::feet(150.0, 0.0)], 10u8),
        ];
        let report = map_border_zone(
            &cells,
            (0.0, 150.0),
            (0.0, 0.0),
            10.0,
            &prop(),
            &FloorPlan::open(),
        );
        assert!(
            report.border_fraction() > 0.1,
            "{}",
            report.border_fraction()
        );
        // The exact midpoint must be in the border zone.
        let mid = report
            .points
            .iter()
            .find(|p| (p.pos.distance_feet(Point::feet(70.0, 0.0))) < 1.0)
            .unwrap();
        assert!(mid.in_border_zone(), "{mid:?}");
        // Positions right next to a cell are coupled to at least that cell.
        assert!(!report.points.first().unwrap().orphaned());
    }

    #[test]
    fn high_thresholds_shrink_the_border_but_open_dead_zones() {
        let cells_lo = vec![
            (vec![Point::feet(0.0, 0.0)], 10u8),
            (vec![Point::feet(150.0, 0.0)], 10u8),
        ];
        let cells_hi = vec![
            (vec![Point::feet(0.0, 0.0)], 22u8),
            (vec![Point::feet(150.0, 0.0)], 22u8),
        ];
        let p = prop();
        let plan = FloorPlan::open();
        let lo = map_border_zone(&cells_lo, (0.0, 150.0), (0.0, 0.0), 5.0, &p, &plan);
        let hi = map_border_zone(&cells_hi, (0.0, 150.0), (0.0, 0.0), 5.0, &p, &plan);
        assert!(hi.border_fraction() < lo.border_fraction());
        assert!(hi.orphan_fraction() > lo.orphan_fraction());
    }

    #[test]
    fn classic_hidden_terminal_line() {
        // A — victim — B with A and B out of each other's range: the
        // textbook (and Section 7.4) configuration.
        let stations = vec![
            Point::feet(0.0, 0.0),
            Point::feet(80.0, 0.0),
            Point::feet(160.0, 0.0),
        ];
        // At threshold 12: 80 ft is audible, 160 ft is not.
        let pairs = find_hidden_terminals(&stations, 12, &prop(), &FloorPlan::open());
        assert_eq!(
            pairs,
            vec![HiddenTerminalPair {
                a: 0,
                b: 2,
                victim: 1
            }]
        );
    }

    #[test]
    fn close_stations_have_no_hidden_terminals() {
        let stations = vec![
            Point::feet(0.0, 0.0),
            Point::feet(10.0, 0.0),
            Point::feet(20.0, 0.0),
        ];
        let pairs = find_hidden_terminals(&stations, 3, &prop(), &FloorPlan::open());
        assert!(pairs.is_empty(), "{pairs:?}");
    }

    #[test]
    fn walls_create_hidden_terminals() {
        // Stations in adjacent rooms both reach a victim in the doorway
        // region, but heavy walls keep them from hearing each other.
        let stations = vec![
            Point::feet(0.0, 0.0),
            Point::feet(30.0, 0.0),
            Point::feet(60.0, 0.0),
        ];
        let floor = FloorPlan::open()
            .with_wall(
                wavelan_sim::Segment::feet(15.0, -20.0, 15.0, 20.0),
                wavelan_phy::Material::Metal,
            )
            .with_wall(
                wavelan_sim::Segment::feet(45.0, -20.0, 45.0, 20.0),
                wavelan_phy::Material::Metal,
            );
        // Pick a threshold where the two outer stations (through two metal
        // walls) cannot hear each other but each reaches the center (one
        // wall).
        let pairs = find_hidden_terminals(&stations, 11, &prop(), &floor);
        assert!(
            pairs.contains(&HiddenTerminalPair {
                a: 0,
                b: 2,
                victim: 1
            }),
            "{pairs:?}"
        );
    }
}
