//! A mobile client crossing between pseudo-cells: the disruption the paper
//! predicts, measured.
//!
//! Section 7.4: "if a mobile host in the border zone communicates with a
//! host in a cell, the carrier will be sensed in other cells, thus
//! preventing communication in those other cells and reducing overall
//! throughput. Second, ... a mobile host in the border zone may receive
//! badly damaged packets."
//!
//! [`walk`] steps a client along a path between two threshold-isolated
//! cells. At every position it runs a short trial in which the client sends
//! to its best-heard base while the *other* cell runs its own internal
//! traffic, and measures:
//!
//! * the client's own delivery rate (handoff performance), and
//! * the other cell's internal throughput relative to a client-free baseline
//!   (the carrier-sense disruption footprint).

use wavelan_analysis::report::{render_blocks, Cell, Column, Table};
use wavelan_analysis::Block;
use wavelan_mac::Thresholds;
use wavelan_net::testpkt::Endpoint;
use wavelan_phy::agc::power_to_level_units;
use wavelan_sim::station::Traffic;
use wavelan_sim::{FloorPlan, Point, Propagation, ScenarioBuilder, StationConfig};

/// One step of the walk.
#[derive(Debug, Clone, Copy)]
pub struct RoamStep {
    /// Client position, feet along the path (x coordinate).
    pub x_ft: f64,
    /// Which cell's base the client associated with (best heard).
    pub serving_cell: usize,
    /// Level from the client to the serving base.
    pub serving_level: f64,
    /// Fraction of the client's packets its base received.
    pub client_delivery: f64,
    /// The *other* cell's internal throughput, normalized to its
    /// client-free baseline (1.0 = undisturbed).
    pub other_cell_throughput: f64,
}

/// Result of the walk.
#[derive(Debug, Clone)]
pub struct RoamReport {
    /// Steps in path order.
    pub steps: Vec<RoamStep>,
}

impl RoamReport {
    /// Positions where the other cell lost more than `frac` of its
    /// throughput to the roamer — the disruption footprint, feet.
    pub fn disruption_zone(&self, frac: f64) -> Vec<f64> {
        self.steps
            .iter()
            .filter(|s| s.other_cell_throughput < 1.0 - frac)
            .map(|s| s.x_ft)
            .collect()
    }

    /// Positions where the client itself delivered poorly (< 90%).
    pub fn dead_zone(&self) -> Vec<f64> {
        self.steps
            .iter()
            .filter(|s| s.client_delivery < 0.9)
            .map(|s| s.x_ft)
            .collect()
    }

    /// The report blocks: one table over the walk.
    pub fn blocks(&self) -> Vec<Block> {
        let table = Table {
            heading: Some(String::from(
                "Roaming client between two pseudo-cells (Section 7.4's border zone)",
            )),
            columns: vec![
                Column::new("pos_ft", "pos")
                    .width(4)
                    .sep("")
                    .suffix("ft")
                    .header_width(3),
                Column::new("cell", "cell")
                    .width(3)
                    .sep("  ")
                    .header_width(6),
                Column::new("level", "level").width(6).precision(1),
                Column::new("client_delivery_pct", "client-delivery")
                    .width(14)
                    .suffix("%")
                    .header_width(16),
                Column::new("other_cell_throughput_pct", "other-cell-throughput")
                    .width(18)
                    .suffix("%")
                    .header_width(22),
            ],
            rows: self
                .steps
                .iter()
                .map(|s| {
                    vec![
                        Cell::Float(s.x_ft),
                        Cell::UInt(s.serving_cell as u64),
                        Cell::Float(s.serving_level),
                        Cell::Float(s.client_delivery * 100.0),
                        Cell::Float(s.other_cell_throughput * 100.0),
                    ]
                })
                .collect(),
        };
        vec![Block::Table(table)]
    }

    /// Renders the walk.
    pub fn render(&self) -> String {
        render_blocks(&self.blocks())
    }
}

/// The fixed geometry: two cells, each a base + one member station, with
/// the bases `separation_ft` apart on the x axis.
#[derive(Debug, Clone, Copy)]
pub struct TwoCells {
    /// Distance between the two bases, feet.
    pub separation_ft: f64,
    /// Receive/carrier threshold both cells run.
    pub threshold: u8,
}

impl TwoCells {
    /// Base position of cell `i` (0 or 1).
    fn base(&self, i: usize) -> Point {
        Point::feet(if i == 0 { 0.0 } else { self.separation_ft }, 0.0)
    }

    /// Member position of cell `i` (8 ft from its base).
    fn member(&self, i: usize) -> Point {
        Point::feet(
            if i == 0 {
                8.0
            } else {
                self.separation_ft - 8.0
            },
            4.0,
        )
    }
}

/// Measures cell 1's internal throughput without any roamer over a fixed
/// duration, as the normalization baseline (delivered packet count). Both
/// the baseline and the walk trials use *saturating* senders over the same
/// duration, so the counts compare airtime head-on.
fn baseline_cell1(cells: TwoCells, duration_ns: u64, seed: u64, prop: &Propagation) -> u64 {
    let mut b = ScenarioBuilder::new(seed);
    let thresholds = Thresholds {
        receive_level: cells.threshold,
        quality: 1,
    };
    let base1 = b.station(StationConfig {
        thresholds,
        ..StationConfig::receiver(Endpoint::station(11), cells.base(1))
    });
    let mut member = StationConfig::sender(Endpoint::station(12), cells.member(1), base1);
    member.thresholds = thresholds;
    member.traffic = Traffic::Saturate { peer: base1 };
    let member1 = b.station(member);
    let mut scenario = b.build();
    scenario.propagation = prop.clone();
    let result = scenario.run_for(duration_ns);
    result.traces[base1]
        .as_ref()
        .map(|t| {
            t.records
                .iter()
                .filter(|r| r.truth.unwrap().src_station == member1)
                .count() as u64
        })
        .unwrap_or(0)
}

/// Walks the client from `x_start_ft` to `x_end_ft` in `steps` steps. Each
/// step runs `trial_ms` of saturated traffic.
pub fn walk(
    cells: TwoCells,
    x_start_ft: f64,
    x_end_ft: f64,
    steps: usize,
    trial_ms: u64,
    seed: u64,
) -> RoamReport {
    let duration_ns = trial_ms * 1_000_000;
    let mut prop = Propagation::indoor(seed);
    prop.shadowing_sigma_db = 0.0; // the walk wants the deterministic field
    let plan = FloorPlan::open();
    let baseline = baseline_cell1(cells, duration_ns, seed ^ 0xBA5E, &prop).max(1);

    let mut out = Vec::with_capacity(steps);
    for i in 0..steps {
        let x = x_start_ft + (x_end_ft - x_start_ft) * i as f64 / (steps - 1).max(1) as f64;
        let client_pos = Point::feet(x, 2.0);
        // Associate with the best-heard base.
        let levels: Vec<f64> = (0..2)
            .map(|c| power_to_level_units(prop.wavelan_rx_dbm(client_pos, cells.base(c), &plan)))
            .collect();
        let serving = if levels[0] >= levels[1] { 0 } else { 1 };

        let thresholds = Thresholds {
            receive_level: cells.threshold,
            quality: 1,
        };
        let mut b = ScenarioBuilder::new(seed.wrapping_add(i as u64));
        // Serving base (traced receiver).
        let serving_base = b.station(StationConfig {
            thresholds,
            ..StationConfig::receiver(Endpoint::station(1), cells.base(serving))
        });
        // The client, saturating toward its base.
        let mut client = StationConfig::sender(Endpoint::station(2), client_pos, serving_base);
        client.thresholds = thresholds;
        client.traffic = Traffic::Saturate { peer: serving_base };
        let client_id = b.station(client);
        // The *other* cell's internal pair (traced receiver + sender).
        let other = 1 - serving;
        let other_base = b.station(StationConfig {
            thresholds,
            ..StationConfig::receiver(Endpoint::foreign(11), cells.base(other))
        });
        let mut other_member =
            StationConfig::sender(Endpoint::foreign(12), cells.member(other), other_base);
        other_member.thresholds = thresholds;
        other_member.traffic = Traffic::Saturate { peer: other_base };
        let other_member_id = b.station(other_member);

        let mut scenario = b.build();
        scenario.propagation = prop.clone();
        let result = scenario.run_for(duration_ns);

        let client_rx = result.traces[serving_base]
            .as_ref()
            .map(|t| {
                t.records
                    .iter()
                    .filter(|r| r.truth.unwrap().src_station == client_id)
                    .count()
            })
            .unwrap_or(0);
        let other_rx = result.traces[other_base]
            .as_ref()
            .map(|t| {
                t.records
                    .iter()
                    .filter(|r| r.truth.unwrap().src_station == other_member_id)
                    .count()
            })
            .unwrap_or(0);

        out.push(RoamStep {
            x_ft: x,
            serving_cell: serving,
            serving_level: levels[serving],
            client_delivery: client_rx as f64 / result.packets_transmitted[client_id].max(1) as f64,
            other_cell_throughput: (other_rx as f64 / baseline as f64).min(1.0),
        });
    }
    RoamReport { steps: out }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn border_zone_disrupts_the_other_cell() {
        let cells = TwoCells {
            separation_ft: 200.0,
            threshold: 12,
        };
        let report = walk(cells, 20.0, 180.0, 9, 1_500, 7);

        // Near its own base the client is clean and the other cell
        // undisturbed.
        let first = report.steps.first().unwrap();
        assert_eq!(first.serving_cell, 0);
        assert!(first.client_delivery > 0.95, "{first:?}");
        assert!(first.other_cell_throughput > 0.9, "{first:?}");
        let last = report.steps.last().unwrap();
        assert_eq!(last.serving_cell, 1);
        assert!(last.client_delivery > 0.95, "{last:?}");

        // Somewhere in the middle the roamer's transmissions reach the other
        // cell's base above threshold: its internal throughput drops — the
        // paper's carrier-sense disruption.
        let zone = report.disruption_zone(0.2);
        assert!(!zone.is_empty(), "no disruption zone: {}", report.render());
        for &x in &zone {
            assert!((40.0..160.0).contains(&x), "disruption outside border: {x}");
        }
        assert!(report.render().contains("Roaming"));
    }

    #[test]
    fn handoff_point_sits_midway() {
        let cells = TwoCells {
            separation_ft: 200.0,
            threshold: 12,
        };
        let report = walk(cells, 20.0, 180.0, 9, 600, 9);
        // Serving cell switches exactly once along the walk.
        let switches = report
            .steps
            .windows(2)
            .filter(|w| w[0].serving_cell != w[1].serving_cell)
            .count();
        assert_eq!(switches, 1, "{}", report.render());
    }
}
