//! Aggregate throughput under carrier-sense coupling.
//!
//! Section 7.4: "if a mobile host in the border zone communicates with a
//! host in a cell, the carrier will be sensed in other cells, thus
//! preventing communication in those other cells and reducing overall
//! throughput."
//!
//! Model: cells are vertices; an edge joins two cells whose transmissions
//! assert carrier sense in each other. At any instant the set of
//! concurrently transmitting cells must be an independent set of that
//! coupling graph, so the spatial-reuse capacity of the deployment is the
//! *maximum* independent set size. Deployments are small (a building's worth
//! of cells), so we compute it exactly with a bitmask search.

/// Maximum number of cells the exact solver accepts.
pub const MAX_CELLS: usize = 24;

/// A symmetric coupling graph over `n` cells, adjacency as bitmasks.
#[derive(Debug, Clone)]
pub struct CouplingGraph {
    n: usize,
    adj: Vec<u32>,
}

impl CouplingGraph {
    /// An edgeless graph (fully independent cells).
    pub fn new(n: usize) -> CouplingGraph {
        assert!(n <= MAX_CELLS, "exact solver limited to {MAX_CELLS} cells");
        CouplingGraph { n, adj: vec![0; n] }
    }

    /// Marks cells `a` and `b` as carrier-coupled.
    pub fn couple(&mut self, a: usize, b: usize) {
        assert!(a != b && a < self.n && b < self.n);
        self.adj[a] |= 1 << b;
        self.adj[b] |= 1 << a;
    }

    /// Whether `a` and `b` are coupled.
    pub fn coupled(&self, a: usize, b: usize) -> bool {
        self.adj[a] & (1 << b) != 0
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no cells.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Exact maximum independent set size (branch and bound on bitmasks).
    pub fn max_independent_set(&self) -> usize {
        fn solve(graph: &CouplingGraph, candidates: u32, current: usize, best: &mut usize) {
            if candidates == 0 {
                *best = (*best).max(current);
                return;
            }
            // Bound: even taking every candidate can't beat best.
            if current + candidates.count_ones() as usize <= *best {
                return;
            }
            let v = candidates.trailing_zeros() as usize;
            // Branch 1: take v (drop v and its neighbours).
            solve(
                graph,
                candidates & !(1 << v) & !graph.adj[v],
                current + 1,
                best,
            );
            // Branch 2: skip v.
            solve(graph, candidates & !(1 << v), current, best);
        }
        let mut best = 0;
        let all = if self.n == 32 {
            u32::MAX
        } else {
            (1u32 << self.n) - 1
        };
        solve(self, all, 0, &mut best);
        best
    }
}

/// Spatial-reuse throughput of a deployment: the number of cells that can
/// transmit simultaneously (each cell contributing one channel's worth),
/// as a fraction of the cell count. 1.0 = perfect isolation; 1/n = a single
/// collision domain.
pub fn coupling_throughput(graph: &CouplingGraph) -> f64 {
    if graph.is_empty() {
        return 0.0;
    }
    graph.max_independent_set() as f64 / graph.len() as f64
}

/// Builds the coupling graph of a deployment from cell member positions and
/// thresholds: cells couple when any member of one asserts carrier sense at
/// any member of the other.
pub fn coupling_from_geometry(
    cells: &[(Vec<wavelan_sim::Point>, u8)],
    prop: &wavelan_sim::Propagation,
    plan: &wavelan_sim::FloorPlan,
) -> CouplingGraph {
    let mut g = CouplingGraph::new(cells.len());
    for a in 0..cells.len() {
        for b in (a + 1)..cells.len() {
            let (members_a, _) = &cells[a];
            let (members_b, threshold_b) = &cells[b];
            let (_, threshold_a) = &cells[a];
            let couples = members_a.iter().any(|pa| {
                members_b.iter().any(|pb| {
                    let level_ab =
                        wavelan_phy::agc::power_to_level_units(prop.wavelan_rx_dbm(*pa, *pb, plan));
                    let level_ba =
                        wavelan_phy::agc::power_to_level_units(prop.wavelan_rx_dbm(*pb, *pa, plan));
                    level_ab >= f64::from(*threshold_b) || level_ba >= f64::from(*threshold_a)
                })
            });
            if couples {
                g.couple(a, b);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavelan_sim::{FloorPlan, Point, Propagation};

    #[test]
    fn independent_cells_have_full_throughput() {
        let g = CouplingGraph::new(5);
        assert_eq!(g.max_independent_set(), 5);
        assert_eq!(coupling_throughput(&g), 1.0);
    }

    #[test]
    fn fully_coupled_cells_serialize() {
        let mut g = CouplingGraph::new(4);
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.couple(a, b);
            }
        }
        assert_eq!(g.max_independent_set(), 1);
        assert_eq!(coupling_throughput(&g), 0.25);
    }

    #[test]
    fn path_graph_alternates() {
        // 0—1—2—3—4: MIS = {0,2,4} = 3.
        let mut g = CouplingGraph::new(5);
        for i in 0..4 {
            g.couple(i, i + 1);
        }
        assert_eq!(g.max_independent_set(), 3);
    }

    #[test]
    fn cycle_of_five() {
        // C5: MIS = 2.
        let mut g = CouplingGraph::new(5);
        for i in 0..5 {
            g.couple(i, (i + 1) % 5);
        }
        assert_eq!(g.max_independent_set(), 2);
    }

    #[test]
    fn coupled_query() {
        let mut g = CouplingGraph::new(3);
        g.couple(0, 2);
        assert!(g.coupled(0, 2));
        assert!(g.coupled(2, 0));
        assert!(!g.coupled(0, 1));
    }

    #[test]
    fn geometry_coupling_matches_distance() {
        let mut prop = Propagation::indoor(0);
        prop.shadowing_sigma_db = 0.0;
        let plan = FloorPlan::open();
        // Three cells in a row, 100 ft apart, threshold 12 (≈ audible to
        // ~110 ft): neighbours couple, far ends don't.
        let cells = vec![
            (vec![Point::feet(0.0, 0.0)], 12u8),
            (vec![Point::feet(100.0, 0.0)], 12u8),
            (vec![Point::feet(200.0, 0.0)], 12u8),
        ];
        let g = coupling_from_geometry(&cells, &prop, &plan);
        assert!(g.coupled(0, 1));
        assert!(g.coupled(1, 2));
        assert!(!g.coupled(0, 2));
        assert_eq!(g.max_independent_set(), 2);
        assert!((coupling_throughput(&g) - 2.0 / 3.0).abs() < 1e-12);
    }
}
